// The serve subcommand exposes the concurrent query engine as a small HTTP
// JSON API:
//
//	POST /v1/instances          load an instance: {"workload":"landuse","scale":1},
//	                            {"data":"<base64 of a topoinv encode blob>"} or
//	                            {"geojson":{…FeatureCollection…},"precision":7};
//	                            gzipped bodies accepted via Content-Encoding:
//	                            gzip (1MB post-inflate cap); returns the
//	                            content-addressed instance id
//	GET  /v1/instances          list loaded instances
//	DELETE /v1/instances/{id}   unload an instance from the registry (its
//	                            invariant may stay cached until evicted)
//	GET  /v1/instances/{id}/invariant
//	                            compute (or fetch from cache) the invariant;
//	                            add ?format=binary for the encoded blob
//	POST /v1/ask                one query, written in the FO(P,<x,<y) query
//	                            language — {"id":"…","formula":"exists u .
//	                            in(P, u) and in(Q, u)","strategy":"auto"} —
//	                            or as a legacy name — {"id":"…","query":
//	                            "intersects","regions":["P","Q"]}; legacy
//	                            names are expanded to formula text and
//	                            parsed, so both spellings share one
//	                            evaluation path and one answer-cache entry.
//	                            The response carries the canonical form.
//	                            With ?debug=timings the response also carries
//	                            a per-stage "timings" span tree (answer
//	                            cache, invariant fetch, evaluation).
//	POST /v1/batch              many queries over the worker pool:
//	                            {"strategy":"fixpoint","requests":[{…},…]};
//	                            each request may carry its own "strategy"
//	                            override and "formula" or legacy name.  With
//	                            Accept: application/x-ndjson the response
//	                            streams one JSON line per result as workers
//	                            finish (each line carries "index"); otherwise
//	                            a JSON array in request order is returned.
//	                            ?debug=timings adds per-item span trees.
//	GET  /v1/instances/{id}/similar?k=N
//	                            top-N topologically similar instances from the
//	                            persistent corpus: exact homeomorphism-class
//	                            matches first (distance 0), then approximate
//	                            matches ranked by the feature-space distance
//	POST /v1/similar            the same retrieval for an inline probe (the
//	                            POST /v1/instances body fields plus "k");
//	                            the probe is not registered for serving
//	GET  /v1/stats              engine caches (invariant + answer) and
//	                            per-strategy counters, plus uptime_seconds,
//	                            build info (module version / vcs revision)
//	                            and a JSON snapshot of every /metrics
//	                            instrument; served with Cache-Control:
//	                            no-store so dashboards can detect restarts
//	GET  /metrics               every registered instrument (engine, store,
//	                            sweep/arrangement, HTTP) in the Prometheus
//	                            text exposition format
//
// Flags beyond the PR-4 set: -log-format text|json and -log-level pick the
// structured-log encoding (all serve logging is log/slog with req_id /
// instance / strategy keys; request ids propagate through the request
// context into engine log lines), -slow <duration> logs any request slower
// than the threshold together with its full span tree, and -debug-addr
// mounts net/http/pprof on a second, normally loopback-only listener kept
// off the public API socket.
//
// Shutdown is graceful: SIGINT/SIGTERM stops accepting connections, drains
// in-flight requests (NDJSON streams included) for up to 10s via
// http.Server.Shutdown, and only then flushes and closes the invariant
// store — the manifest write can no longer race open requests.
//
// Query-language errors (parse failures, unresolved region names) come back
// as {"error": …, "offset": N} with the byte offset into the formula.
package main

import (
	"compress/gzip"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/topoinv"
)

func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheCap := fs.Int("cache", 128, "invariant cache capacity (entries)")
	answerCap := fs.Int("answers", 0, "answer cache capacity (0 = default)")
	evalCap := fs.Int("evaluators", 0, "compiled-evaluator cache capacity (0 = default)")
	workers := fs.Int("workers", 0, "batch worker-pool size (0 = GOMAXPROCS)")
	storeDir := fs.String("store", "", "directory for the disk-persistent invariant store (empty = memory only)")
	logFormat := fs.String("log-format", "text", "structured log encoding: text | json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug | info | warn | error")
	slow := fs.Duration("slow", 0, "log requests slower than this threshold with their span tree (0 = off)")
	debugAddr := fs.String("debug-addr", "", "optional second listen address serving net/http/pprof (keep it loopback-only)")
	fs.Parse(args)

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	opts := []topoinv.EngineOption{topoinv.WithCacheCapacity(*cacheCap)}
	if *answerCap > 0 {
		opts = append(opts, topoinv.WithAnswerCapacity(*answerCap))
	}
	if *evalCap > 0 {
		opts = append(opts, topoinv.WithEvaluatorCapacity(*evalCap))
	}
	if *workers > 0 {
		opts = append(opts, topoinv.WithWorkers(*workers))
	}
	if *storeDir != "" {
		opts = append(opts, topoinv.WithStore(*storeDir))
	}
	engine := topoinv.NewEngine(opts...)
	if err := engine.StoreErr(); err != nil {
		logger.Error("opening invariant store", "err", err)
		os.Exit(1)
	}
	if *storeDir != "" {
		logger.Info("invariant store open", "dir", *storeDir, "invariants", engine.Store().Len())
	}

	if *debugAddr != "" {
		go servePprof(logger, *debugAddr)
	}

	s := newServer(engine)
	s.slow = *slow
	srv := &http.Server{Addr: *addr, Handler: s.routes()}

	// Graceful shutdown: stop accepting, drain in-flight requests (NDJSON
	// streams included), then flush the store manifest.  Closing the engine
	// only after Shutdown returns means the manifest write cannot race an
	// open request's store reads.
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		<-sig
		logger.Info("signal received; draining in-flight requests")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("shutdown did not drain cleanly", "err", err)
		}
	}()

	logger.Info("topoinv engine listening", "addr", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}
	<-done
	if err := engine.Close(); err != nil {
		logger.Error("closing invariant store", "err", err)
		os.Exit(1)
	}
	logger.Info("shutdown complete")
}

func buildLogger(format, level string) (*slog.Logger, error) {
	lvl, err := topoinv.ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	if format != "text" && format != "json" {
		return nil, fmt.Errorf("unknown log format %q (want text | json)", format)
	}
	return topoinv.NewLogger(os.Stderr, format, lvl), nil
}

// servePprof mounts net/http/pprof on its own listener, so profiling stays
// off the public API socket (bind it to loopback in production).
func servePprof(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("pprof listener failed", "addr", addr, "err", err)
	}
}

// server is the HTTP front-end: a registry of loaded instances (keyed by
// content address) in front of the shared query engine.
type server struct {
	engine *topoinv.Engine
	start  time.Time
	build  buildInfo
	// slow is the slow-request log threshold (0 disables); requests over it
	// are logged with their full span tree.
	slow time.Duration

	mu        sync.RWMutex
	instances map[string]*topoinv.Instance
}

func newServer(e *topoinv.Engine) *server {
	return &server{
		engine:    e,
		start:     time.Now(),
		build:     readBuildInfo(),
		instances: make(map[string]*topoinv.Instance),
	}
}

// buildInfo identifies the running binary, so a dashboard can tell a restart
// from a redeploy.
type buildInfo struct {
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
}

func readBuildInfo() buildInfo {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return buildInfo{}
	}
	out := buildInfo{Version: bi.Main.Version, GoVersion: bi.GoVersion}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	s.handle(mux, "POST /v1/instances", "/v1/instances", s.handleLoad)
	s.handle(mux, "GET /v1/instances", "/v1/instances", s.handleList)
	s.handle(mux, "DELETE /v1/instances/{id}", "/v1/instances/{id}", s.handleUnload)
	s.handle(mux, "GET /v1/instances/{id}/invariant", "/v1/instances/{id}/invariant", s.handleInvariant)
	s.handle(mux, "GET /v1/instances/{id}/similar", "/v1/instances/{id}/similar", s.handleSimilar)
	s.handle(mux, "POST /v1/similar", "/v1/similar", s.handleSimilarProbe)
	s.handle(mux, "POST /v1/ask", "/v1/ask", s.handleAsk)
	s.handle(mux, "POST /v1/batch", "/v1/batch", s.handleBatch)
	s.handle(mux, "GET /v1/stats", "/v1/stats", s.handleStats)
	s.handle(mux, "GET /metrics", "/metrics", handleMetrics)
	return mux
}

func (s *server) get(id string) (*topoinv.Instance, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	inst, ok := s.instances[id]
	return inst, ok
}

type loadRequest struct {
	// Workload + Scale generate a built-in workload…
	Workload string `json:"workload,omitempty"`
	Scale    int    `json:"scale,omitempty"`
	// …or Data carries a base64-encoded binary instance blob…
	Data string `json:"data,omitempty"`
	// …or GeoJSON carries an inline GeoJSON document (FeatureCollection,
	// Feature or bare geometry), imported with rational coordinate
	// snapping at the given decimal precision (0 ⇒ the default grid).
	GeoJSON   json.RawMessage `json:"geojson,omitempty"`
	Precision int             `json:"precision,omitempty"`
	// K is only read by POST /v1/similar: the number of matches to return
	// (default 5, capped at maxSimilarK).
	K int `json:"k,omitempty"`
}

type loadResponse struct {
	ID       string `json:"id"`
	Regions  int    `json:"regions"`
	Features int    `json:"features"`
	Points   int    `json:"points"`
}

// Body limits: geometry validation is O((n+k) log n) via the sweep-line
// checker, but unbounded uploads are still a memory and parsing DoS.
// maxBodyBytes caps every request body; maxGeoJSONBytes caps inline GeoJSON
// early (and is also the post-inflate cap for gzip uploads), and the
// importer's own position limits (MaxRingVertices / MaxPolygonPositions /
// MaxDocumentPositions) bound the validation cost: typical cartographic
// data (~80 vertices per polygon) validates in microseconds, a maximal
// 100k-vertex ring in about half a second.
const (
	maxBodyBytes    = 8 << 20
	maxGeoJSONBytes = 1 << 20
)

// readLoadBody decodes the load request, transparently inflating
// Content-Encoding: gzip bodies.  Compressed uploads matter for GeoJSON —
// coordinate-heavy JSON compresses ~10x, so the raised vertex budgets stay
// reachable through reasonable request sizes.  The inflated bytes are
// capped at maxGeoJSONBytes (a gzip bomb fails fast with 413); uncompressed
// bodies keep the larger maxBodyBytes cap, since base64 instance blobs
// arrive uncompressed.
func readLoadBody(w http.ResponseWriter, r *http.Request) (*loadRequest, int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req loadRequest
	if strings.EqualFold(r.Header.Get("Content-Encoding"), "gzip") {
		zr, err := gzip.NewReader(r.Body)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad gzip body: %w", err)
		}
		defer zr.Close()
		data, err := io.ReadAll(io.LimitReader(zr, maxGeoJSONBytes+1))
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad gzip body: %w", err)
		}
		if len(data) > maxGeoJSONBytes {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("gzipped body inflates past %d bytes", maxGeoJSONBytes)
		}
		if err := json.Unmarshal(data, &req); err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
		}
		return &req, 0, nil
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	return &req, 0, nil
}

// instanceFromLoadRequest materializes the instance a load-shaped request
// describes (inline GeoJSON, base64 instance blob, or named workload) —
// shared by POST /v1/instances and the POST /v1/similar probe. The int is
// the HTTP status for the returned error.
func instanceFromLoadRequest(req loadRequest) (*topoinv.Instance, int, error) {
	if len(req.GeoJSON) > maxGeoJSONBytes {
		return nil, http.StatusBadRequest, fmt.Errorf("geojson document larger than %d bytes", maxGeoJSONBytes)
	}
	// Clients that emit every field treat absent values as JSON null;
	// RawMessage keeps the literal "null" bytes, which must not shadow a
	// workload/data load.
	if string(req.GeoJSON) == "null" {
		req.GeoJSON = nil
	}
	switch {
	case len(req.GeoJSON) > 0:
		var opts []topoinv.GeoJSONOption
		if req.Precision > 0 {
			opts = append(opts, topoinv.GeoJSONPrecision(req.Precision))
		}
		inst, err := topoinv.ImportGeoJSON(req.GeoJSON, opts...)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad geojson: %w", err)
		}
		return inst, 0, nil
	case req.Data != "":
		raw, err := base64.StdEncoding.DecodeString(req.Data)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad base64 data: %w", err)
		}
		inst, err := topoinv.Decode(raw)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad instance blob: %w", err)
		}
		return inst, 0, nil
	case req.Workload != "":
		scale := req.Scale
		if scale < 1 {
			scale = 1
		}
		inst, err := generateWorkload(req.Workload, scale)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		return inst, 0, nil
	}
	return nil, http.StatusBadRequest, fmt.Errorf("provide workload, data or geojson")
}

func (s *server) handleLoad(w http.ResponseWriter, r *http.Request) {
	reqp, status, err := readLoadBody(w, r)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	inst, status, err := instanceFromLoadRequest(*reqp)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	id, err := topoinv.InstanceKey(inst)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.mu.Lock()
	s.instances[id] = inst
	s.mu.Unlock()
	sum := inst.Summarise()
	slog.Debug("serve: instance loaded",
		"req_id", topoinv.RequestIDFrom(r.Context()),
		"instance", id, "regions", sum.Regions, "points", sum.Points)
	writeJSON(w, http.StatusOK, loadResponse{ID: id, Regions: sum.Regions, Features: sum.Features, Points: sum.Points})
}

func generateWorkload(name string, scale int) (*topoinv.Instance, error) {
	switch name {
	case "landuse":
		return topoinv.LandUse(topoinv.DefaultLandUse(scale))
	case "hydrography":
		return topoinv.Hydrography(topoinv.DefaultHydrography(scale))
	case "commune":
		return topoinv.Commune(topoinv.DefaultCommune(scale))
	case "nested":
		return topoinv.NestedRegions(scale + 1)
	case "multicomponent":
		return topoinv.MultiComponent(scale + 2)
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

// handleUnload removes an instance from the registry (the invariant may stay
// in the engine's LRU cache until evicted).  Without this the registry — the
// largest objects the server holds — would only ever grow.
func (s *server) handleUnload(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.instances[id]
	delete(s.instances, id)
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown instance id")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// listEntry is one GET /v1/instances row: the load summary plus the
// similarity-index identity (exact-tier equivalence class and invariant
// fingerprint, both hex SHA-256). The identity fields are present once the
// instance's invariant has been computed; class is omitted when the exact
// tier abstained on an oversized invariant.
type listEntry struct {
	loadResponse
	Class       string `json:"class,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]listEntry, 0, len(s.instances))
	for id, inst := range s.instances {
		sum := inst.Summarise()
		e := listEntry{loadResponse: loadResponse{ID: id, Regions: sum.Regions, Features: sum.Features, Points: sum.Points}}
		if ent, ok := s.engine.SimEntry(inst); ok {
			e.Class, e.Fingerprint = ent.Class, ent.Fingerprint
		}
		out = append(out, e)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

type invariantResponse struct {
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Faces    int    `json:"faces"`
	Cells    int    `json:"cells"`
	Cached   bool   `json:"cached"`
	Data     string `json:"data,omitempty"`
}

func (s *server) handleInvariant(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown instance id")
		return
	}
	_, cached := s.engine.CachedInvariant(inst)
	inv, err := s.engine.Invariant(inst)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := invariantResponse{
		Vertices: len(inv.Vertices),
		Edges:    len(inv.Edges),
		Faces:    len(inv.Faces),
		Cells:    inv.CellCount(),
		Cached:   cached,
	}
	if r.URL.Query().Get("format") == "binary" {
		data, err := topoinv.EncodeInvariant(inv)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp.Data = base64.StdEncoding.EncodeToString(data)
	}
	writeJSON(w, http.StatusOK, resp)
}

type askRequest struct {
	ID string `json:"id"`
	// Formula is a sentence of the FO(P,<x,<y) query language, e.g.
	// "exists u . in(P, u) and interior(Q, u)".
	Formula string `json:"formula,omitempty"`
	// Query + Regions is the legacy named form (nonempty | hasinterior |
	// intersects | contained | boundaryonly); it is expanded to formula
	// text and parsed, so both forms share one evaluation path.
	Query    string   `json:"query,omitempty"`
	Regions  []string `json:"regions,omitempty"`
	Strategy string   `json:"strategy,omitempty"`
}

type askResponse struct {
	Answer    bool   `json:"answer"`
	Canonical string `json:"canonical"`
	CacheHit  bool   `json:"cache_hit"`
	AnswerHit bool   `json:"answer_hit"`
	Latency   int64  `json:"latency_ns"`
	Strategy  string `json:"strategy"`
	// Timings is the per-stage span tree, present only with ?debug=timings.
	Timings *topoinv.StageTiming `json:"timings,omitempty"`
}

// maxQuantifierDepth caps the quantifier depth of served formulas.  The
// compiled bitset evaluator prices a quantifier level in 64-bit word
// operations over the membership matrix, not in exact-rational geometry:
// the innermost level collapses to an any-bit test, single-variable
// restrictions are pre-folded columns, and only levels carrying nested
// quantifiers enumerate candidates — so the worst case is
// O(sample^(depth-1) · sample/64) word ops with aggressive short-circuit,
// and depth 6 evaluates in the time geometry-priced depth 4 used to.
// Unbounded depth is still an easy CPU DoS on an open endpoint (the
// sample^(depth-1) factor survives for adversarial alternations), hence a
// cap; the legacy aliases all have depth 1.  The CLI (topoinv ask) applies
// no such cap.
const maxQuantifierDepth = 6

// buildQuery resolves a request's query: an explicit formula in the textual
// query language, or a legacy name expanded through topoinv.QueryAlias.  The
// returned query has been parsed, canonicalized and schema-checked — there
// is exactly one path from request to evaluated AST.
func buildQuery(req askRequest, inst *topoinv.Instance) (topoinv.Query, error) {
	src := req.Formula
	fromAlias := false
	switch {
	case req.Query != "" && req.Formula != "":
		return nil, fmt.Errorf(`provide "formula" or the legacy "query" name, not both`)
	case req.Formula != "" && len(req.Regions) > 0:
		// Silently dropping the regions would let a client migrating from
		// the legacy form believe they constrain the formula.
		return nil, fmt.Errorf(`"regions" only applies to the legacy "query" form; name regions inside the formula instead`)
	case req.Query != "":
		var err error
		if src, err = topoinv.QueryAlias(req.Query, req.Regions...); err != nil {
			return nil, err
		}
		fromAlias = true
	case src == "":
		return nil, fmt.Errorf(`provide a "formula" or a legacy "query" name`)
	}
	q, err := topoinv.ParseQuery(src)
	if err == nil {
		err = q.CheckSchema(inst.Schema())
	}
	if err != nil {
		if fromAlias {
			// The byte offset indexes the server-side alias expansion, which
			// the client never sent; keep the message, drop the offset.
			var qe *topoinv.QueryError
			if errors.As(err, &qe) {
				return nil, fmt.Errorf("%s", qe.Msg)
			}
		}
		return nil, err
	}
	if d := topoinv.QueryDepth(q.Formula); d > maxQuantifierDepth {
		return nil, fmt.Errorf("quantifier depth %d exceeds the served limit of %d", d, maxQuantifierDepth)
	}
	return q.Formula, nil
}

func parseStrategy(name string) (topoinv.Strategy, error) {
	if name == "" {
		return topoinv.ViaInvariantFixpoint, nil
	}
	s, ok := strategies[name]
	if !ok {
		return 0, fmt.Errorf("unknown strategy %q (want direct | fo | fixpoint | linearized | auto)", name)
	}
	return s, nil
}

// wantTimings reports whether the request opted into the per-stage timings
// breakdown (?debug=timings).
func wantTimings(r *http.Request) bool {
	return r.URL.Query().Get("debug") == "timings"
}

func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req askRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	inst, ok := s.get(req.ID)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown instance id")
		return
	}
	q, err := buildQuery(req, inst)
	if err != nil {
		queryError(w, err)
		return
	}
	strat, err := parseStrategy(req.Strategy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The span recorder stays nil unless the client asked for timings or
	// slow-request logging needs a tree to print: the disabled path costs
	// one nil test per stage in the engine.
	var span *topoinv.Span
	if wantTimings(r) || s.slow > 0 {
		span = topoinv.StartSpan("ask")
	}
	res := s.engine.Do(topoinv.BatchRequest{
		Instance: inst, Query: q,
		Strategy: strat, StrategySet: true,
		Ctx: r.Context(), Span: span,
	}, strat)
	span.End()
	s.logSlow(r, "ask", req.ID, res, span)
	if res.Err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", res.Err)
		return
	}
	resp := askResponse{
		Answer:    res.Answer,
		Canonical: res.Canonical,
		CacheHit:  res.CacheHit,
		AnswerHit: res.AnswerHit,
		Latency:   res.Latency.Nanoseconds(),
		// The strategy that actually ran: for "auto" this is the resolved
		// one (fixpoint or the direct fallback).
		Strategy: res.Strategy.String(),
	}
	if wantTimings(r) {
		resp.Timings = span.Timings()
	}
	writeJSON(w, http.StatusOK, resp)
}

// logSlow emits a slow-request log line (with the span tree when one was
// recorded) for requests over the -slow threshold.
func (s *server) logSlow(r *http.Request, kind, instance string, res topoinv.BatchResult, span *topoinv.Span) {
	if s.slow <= 0 || res.Latency < s.slow {
		return
	}
	slog.Warn("serve: slow request",
		"req_id", topoinv.RequestIDFrom(r.Context()),
		"kind", kind,
		"instance", instance,
		"strategy", res.Strategy.String(),
		"latency", res.Latency,
		"canonical", res.Canonical,
		"span", span.String())
}

// queryError writes a query-construction failure.  Structured query-language
// errors carry the byte offset of the offending token into the response.
func queryError(w http.ResponseWriter, err error) {
	var qe *topoinv.QueryError
	if errors.As(err, &qe) {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": qe.Error(), "offset": qe.Offset})
		return
	}
	httpError(w, http.StatusBadRequest, "%v", err)
}

type batchRequest struct {
	Strategy string       `json:"strategy,omitempty"`
	Requests []askRequest `json:"requests"`
}

type batchItemResponse struct {
	Index     int    `json:"index"`
	Answer    bool   `json:"answer"`
	Canonical string `json:"canonical,omitempty"`
	Error     string `json:"error,omitempty"`
	// Offset carries the byte offset of a structured query-language error
	// into the request's formula text (absent for other errors, and for
	// legacy named queries, whose expansion the client never sent).
	Offset    *int   `json:"offset,omitempty"`
	CacheHit  bool   `json:"cache_hit"`
	AnswerHit bool   `json:"answer_hit"`
	Latency   int64  `json:"latency_ns"`
	Strategy  string `json:"strategy,omitempty"`
	// Timings is the per-stage span tree, present only with ?debug=timings.
	Timings *topoinv.StageTiming `json:"timings,omitempty"`
}

func batchItem(index int, res topoinv.BatchResult, span *topoinv.Span) batchItemResponse {
	out := batchItemResponse{
		Index:     index,
		Answer:    res.Answer,
		Canonical: res.Canonical,
		CacheHit:  res.CacheHit,
		AnswerHit: res.AnswerHit,
		Latency:   res.Latency.Nanoseconds(),
		Strategy:  res.Strategy.String(),
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	if span != nil {
		span.End()
		out.Timings = span.Timings()
	}
	return out
}

// handleBatch evaluates many queries on the worker pool.  Per-request
// failures that are detectable before evaluation (a malformed formula, an
// unknown legacy name, a bad per-request strategy) become per-item errors —
// the rest of the batch still runs — while an unknown instance id fails the
// whole batch with 404 before any work starts (it is almost always a caller
// bug, and the NDJSON mode cannot change the status once streaming).
//
// With Accept: application/x-ndjson the response is NDJSON: one JSON object
// per line, written as each worker finishes, identified by "index".  The
// plain mode returns a JSON array in request order.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	defStrat, err := parseStrategy(req.Strategy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	timings := wantTimings(r)
	out := make([]batchItemResponse, len(req.Requests))
	spans := make([]*topoinv.Span, len(req.Requests))
	var engReqs []topoinv.BatchRequest
	var origIdx []int
	for i, a := range req.Requests {
		inst, ok := s.get(a.ID)
		if !ok {
			httpError(w, http.StatusNotFound, "request %d: unknown instance id", i)
			return
		}
		out[i] = batchItemResponse{Index: i}
		q, err := buildQuery(a, inst)
		if err != nil {
			out[i].Error = err.Error()
			// Formula errors are structured: surface the offset like
			// /v1/ask does (buildQuery already strips alias offsets).
			var qe *topoinv.QueryError
			if errors.As(err, &qe) {
				off := qe.Offset
				out[i].Offset = &off
			}
			continue
		}
		engReq := topoinv.BatchRequest{Instance: inst, Query: q, Ctx: r.Context()}
		if timings {
			spans[i] = topoinv.StartSpan("batch_item")
			engReq.Span = spans[i]
		}
		if a.Strategy != "" {
			strat, err := parseStrategy(a.Strategy)
			if err != nil {
				out[i].Error = err.Error()
				continue
			}
			engReq.Strategy, engReq.StrategySet = strat, true
		}
		engReqs = append(engReqs, engReq)
		origIdx = append(origIdx, i)
	}

	if strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		// gone flips on client disconnect (or the first write failure):
		// from then on results are discarded silently instead of logging
		// one encode error per remaining item.  BatchStream must still be
		// drained — abandoning the channel would leak its workers — so the
		// already-submitted evaluations run to completion either way.
		gone := false
		emit := func(item batchItemResponse) {
			if gone {
				return
			}
			if r.Context().Err() != nil {
				gone = true
				return
			}
			if err := enc.Encode(item); err != nil {
				// Debug, not Info: a client hanging up mid-stream is routine
				// under load, and one line per disconnected batch would be
				// pure log spam.
				slog.Debug("serve: ndjson client gone",
					"req_id", topoinv.RequestIDFrom(r.Context()),
					"after_item", item.Index, "err", err)
				gone = true
				return
			}
			mNDJSONLines.Inc()
			if flusher != nil {
				flusher.Flush()
			}
		}
		// Items rejected before evaluation are already final: emit them
		// first, then stream evaluation results in completion order.
		for i := range out {
			if out[i].Error != "" {
				emit(out[i])
			}
		}
		for res := range s.engine.BatchStream(engReqs, defStrat) {
			i := origIdx[res.Index]
			item := batchItem(i, res, spans[i])
			s.logSlow(r, "batch_item", req.Requests[i].ID, res, spans[i])
			emit(item)
		}
		return
	}

	for _, res := range s.engine.Batch(engReqs, defStrat) {
		i := origIdx[res.Index]
		out[i] = batchItem(i, res, spans[i])
		s.logSlow(r, "batch_item", req.Requests[i].ID, res, spans[i])
	}
	writeJSON(w, http.StatusOK, out)
}

// statsResponse embeds the engine snapshot (its fields stay at the top level
// for existing clients) and adds service-level identity: uptime, build info
// and the full metrics snapshot.
type statsResponse struct {
	topoinv.EngineStats
	UptimeSeconds float64        `json:"uptime_seconds"`
	Build         buildInfo      `json:"build"`
	Metrics       map[string]any `json:"metrics"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Dashboards poll this endpoint to detect restarts (uptime going
	// backwards); a cached response would mask exactly that signal.
	w.Header().Set("Cache-Control", "no-store, no-cache, must-revalidate")
	w.Header().Set("Pragma", "no-cache")
	writeJSON(w, http.StatusOK, statsResponse{
		EngineStats:   s.engine.Stats(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Build:         s.build,
		Metrics:       topoinv.MetricsSnapshot(),
	})
}

// handleMetrics renders every registered instrument in the Prometheus text
// exposition format.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	if err := topoinv.WriteMetrics(w); err != nil {
		slog.Debug("serve: metrics client gone", "err", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Debug("serve: encoding response", "err", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
