// The serve subcommand exposes the concurrent query engine as a small HTTP
// JSON API:
//
//	POST /v1/instances          load an instance: {"workload":"landuse","scale":1},
//	                            {"data":"<base64 of a topoinv encode blob>"} or
//	                            {"geojson":{…FeatureCollection…},"precision":7};
//	                            gzipped bodies accepted via Content-Encoding:
//	                            gzip (1MB post-inflate cap); returns the
//	                            content-addressed instance id
//	GET  /v1/instances          list loaded instances
//	DELETE /v1/instances/{id}   unload an instance from the registry (its
//	                            invariant may stay cached until evicted)
//	GET  /v1/instances/{id}/invariant
//	                            compute (or fetch from cache) the invariant;
//	                            add ?format=binary for the encoded blob
//	POST /v1/ask                one query, written in the FO(P,<x,<y) query
//	                            language — {"id":"…","formula":"exists u .
//	                            in(P, u) and in(Q, u)","strategy":"auto"} —
//	                            or as a legacy name — {"id":"…","query":
//	                            "intersects","regions":["P","Q"]}; legacy
//	                            names are expanded to formula text and
//	                            parsed, so both spellings share one
//	                            evaluation path and one answer-cache entry.
//	                            The response carries the canonical form.
//	POST /v1/batch              many queries over the worker pool:
//	                            {"strategy":"fixpoint","requests":[{…},…]};
//	                            each request may carry its own "strategy"
//	                            override and "formula" or legacy name.  With
//	                            Accept: application/x-ndjson the response
//	                            streams one JSON line per result as workers
//	                            finish (each line carries "index"); otherwise
//	                            a JSON array in request order is returned.
//	GET  /v1/stats              engine caches (invariant + answer) and
//	                            per-strategy counters
//
// Query-language errors (parse failures, unresolved region names) come back
// as {"error": …, "offset": N} with the byte offset into the formula.
package main

import (
	"compress/gzip"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"repro/topoinv"
)

func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheCap := fs.Int("cache", 128, "invariant cache capacity (entries)")
	answerCap := fs.Int("answers", 0, "answer cache capacity (0 = default)")
	workers := fs.Int("workers", 0, "batch worker-pool size (0 = GOMAXPROCS)")
	storeDir := fs.String("store", "", "directory for the disk-persistent invariant store (empty = memory only)")
	fs.Parse(args)

	opts := []topoinv.EngineOption{topoinv.WithCacheCapacity(*cacheCap)}
	if *answerCap > 0 {
		opts = append(opts, topoinv.WithAnswerCapacity(*answerCap))
	}
	if *workers > 0 {
		opts = append(opts, topoinv.WithWorkers(*workers))
	}
	if *storeDir != "" {
		opts = append(opts, topoinv.WithStore(*storeDir))
	}
	engine := topoinv.NewEngine(opts...)
	if err := engine.StoreErr(); err != nil {
		log.Fatal(err)
	}
	if *storeDir != "" {
		log.Printf("invariant store at %s (%d invariants on disk)", *storeDir, engine.Store().Len())
		// Flush the store manifest on SIGINT/SIGTERM.  Not required for
		// correctness — Open rebuilds from the shard logs — but a current
		// manifest lets the next Open verify checksums over everything.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			if err := engine.Close(); err != nil {
				log.Printf("closing invariant store: %v", err)
			}
			os.Exit(0)
		}()
	}
	srv := newServer(engine)
	log.Printf("topoinv engine listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}

// server is the HTTP front-end: a registry of loaded instances (keyed by
// content address) in front of the shared query engine.
type server struct {
	engine *topoinv.Engine

	mu        sync.RWMutex
	instances map[string]*topoinv.Instance
}

func newServer(e *topoinv.Engine) *server {
	return &server{engine: e, instances: make(map[string]*topoinv.Instance)}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/instances", s.handleLoad)
	mux.HandleFunc("GET /v1/instances", s.handleList)
	mux.HandleFunc("DELETE /v1/instances/{id}", s.handleUnload)
	mux.HandleFunc("GET /v1/instances/{id}/invariant", s.handleInvariant)
	mux.HandleFunc("POST /v1/ask", s.handleAsk)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func (s *server) get(id string) (*topoinv.Instance, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	inst, ok := s.instances[id]
	return inst, ok
}

type loadRequest struct {
	// Workload + Scale generate a built-in workload…
	Workload string `json:"workload,omitempty"`
	Scale    int    `json:"scale,omitempty"`
	// …or Data carries a base64-encoded binary instance blob…
	Data string `json:"data,omitempty"`
	// …or GeoJSON carries an inline GeoJSON document (FeatureCollection,
	// Feature or bare geometry), imported with rational coordinate
	// snapping at the given decimal precision (0 ⇒ the default grid).
	GeoJSON   json.RawMessage `json:"geojson,omitempty"`
	Precision int             `json:"precision,omitempty"`
}

type loadResponse struct {
	ID       string `json:"id"`
	Regions  int    `json:"regions"`
	Features int    `json:"features"`
	Points   int    `json:"points"`
}

// Body limits: geometry validation is O((n+k) log n) via the sweep-line
// checker, but unbounded uploads are still a memory and parsing DoS.
// maxBodyBytes caps every request body; maxGeoJSONBytes caps inline GeoJSON
// early (and is also the post-inflate cap for gzip uploads), and the
// importer's own position limits (MaxRingVertices / MaxPolygonPositions /
// MaxDocumentPositions) bound the validation cost: typical cartographic
// data (~80 vertices per polygon) validates in microseconds, a maximal
// 100k-vertex ring in about half a second.
const (
	maxBodyBytes    = 8 << 20
	maxGeoJSONBytes = 1 << 20
)

// readLoadBody decodes the load request, transparently inflating
// Content-Encoding: gzip bodies.  Compressed uploads matter for GeoJSON —
// coordinate-heavy JSON compresses ~10x, so the raised vertex budgets stay
// reachable through reasonable request sizes.  The inflated bytes are
// capped at maxGeoJSONBytes (a gzip bomb fails fast with 413); uncompressed
// bodies keep the larger maxBodyBytes cap, since base64 instance blobs
// arrive uncompressed.
func readLoadBody(w http.ResponseWriter, r *http.Request) (*loadRequest, int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req loadRequest
	if strings.EqualFold(r.Header.Get("Content-Encoding"), "gzip") {
		zr, err := gzip.NewReader(r.Body)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad gzip body: %v", err)
		}
		defer zr.Close()
		data, err := io.ReadAll(io.LimitReader(zr, maxGeoJSONBytes+1))
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad gzip body: %v", err)
		}
		if len(data) > maxGeoJSONBytes {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("gzipped body inflates past %d bytes", maxGeoJSONBytes)
		}
		if err := json.Unmarshal(data, &req); err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err)
		}
		return &req, 0, nil
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err)
	}
	return &req, 0, nil
}

func (s *server) handleLoad(w http.ResponseWriter, r *http.Request) {
	reqp, status, err := readLoadBody(w, r)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	req := *reqp
	if len(req.GeoJSON) > maxGeoJSONBytes {
		httpError(w, http.StatusBadRequest, "geojson document larger than %d bytes", maxGeoJSONBytes)
		return
	}
	// Clients that emit every field treat absent values as JSON null;
	// RawMessage keeps the literal "null" bytes, which must not shadow a
	// workload/data load.
	if string(req.GeoJSON) == "null" {
		req.GeoJSON = nil
	}
	var inst *topoinv.Instance
	switch {
	case len(req.GeoJSON) > 0:
		var opts []topoinv.GeoJSONOption
		if req.Precision > 0 {
			opts = append(opts, topoinv.GeoJSONPrecision(req.Precision))
		}
		var err error
		if inst, err = topoinv.ImportGeoJSON(req.GeoJSON, opts...); err != nil {
			httpError(w, http.StatusBadRequest, "bad geojson: %v", err)
			return
		}
	case req.Data != "":
		raw, err := base64.StdEncoding.DecodeString(req.Data)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad base64 data: %v", err)
			return
		}
		if inst, err = topoinv.Decode(raw); err != nil {
			httpError(w, http.StatusBadRequest, "bad instance blob: %v", err)
			return
		}
	case req.Workload != "":
		scale := req.Scale
		if scale < 1 {
			scale = 1
		}
		var err error
		if inst, err = generateWorkload(req.Workload, scale); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	default:
		httpError(w, http.StatusBadRequest, "provide workload, data or geojson")
		return
	}
	id, err := topoinv.InstanceKey(inst)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.mu.Lock()
	s.instances[id] = inst
	s.mu.Unlock()
	sum := inst.Summarise()
	writeJSON(w, http.StatusOK, loadResponse{ID: id, Regions: sum.Regions, Features: sum.Features, Points: sum.Points})
}

func generateWorkload(name string, scale int) (*topoinv.Instance, error) {
	switch name {
	case "landuse":
		return topoinv.LandUse(topoinv.DefaultLandUse(scale))
	case "hydrography":
		return topoinv.Hydrography(topoinv.DefaultHydrography(scale))
	case "commune":
		return topoinv.Commune(topoinv.DefaultCommune(scale))
	case "nested":
		return topoinv.NestedRegions(scale + 1)
	case "multicomponent":
		return topoinv.MultiComponent(scale + 2)
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

// handleUnload removes an instance from the registry (the invariant may stay
// in the engine's LRU cache until evicted).  Without this the registry — the
// largest objects the server holds — would only ever grow.
func (s *server) handleUnload(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.instances[id]
	delete(s.instances, id)
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown instance id")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]loadResponse, 0, len(s.instances))
	for id, inst := range s.instances {
		sum := inst.Summarise()
		out = append(out, loadResponse{ID: id, Regions: sum.Regions, Features: sum.Features, Points: sum.Points})
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

type invariantResponse struct {
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Faces    int    `json:"faces"`
	Cells    int    `json:"cells"`
	Cached   bool   `json:"cached"`
	Data     string `json:"data,omitempty"`
}

func (s *server) handleInvariant(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown instance id")
		return
	}
	_, cached := s.engine.CachedInvariant(inst)
	inv, err := s.engine.Invariant(inst)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := invariantResponse{
		Vertices: len(inv.Vertices),
		Edges:    len(inv.Edges),
		Faces:    len(inv.Faces),
		Cells:    inv.CellCount(),
		Cached:   cached,
	}
	if r.URL.Query().Get("format") == "binary" {
		data, err := topoinv.EncodeInvariant(inv)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp.Data = base64.StdEncoding.EncodeToString(data)
	}
	writeJSON(w, http.StatusOK, resp)
}

type askRequest struct {
	ID string `json:"id"`
	// Formula is a sentence of the FO(P,<x,<y) query language, e.g.
	// "exists u . in(P, u) and interior(Q, u)".
	Formula string `json:"formula,omitempty"`
	// Query + Regions is the legacy named form (nonempty | hasinterior |
	// intersects | contained | boundaryonly); it is expanded to formula
	// text and parsed, so both forms share one evaluation path.
	Query    string   `json:"query,omitempty"`
	Regions  []string `json:"regions,omitempty"`
	Strategy string   `json:"strategy,omitempty"`
}

type askResponse struct {
	Answer    bool   `json:"answer"`
	Canonical string `json:"canonical"`
	CacheHit  bool   `json:"cache_hit"`
	AnswerHit bool   `json:"answer_hit"`
	Latency   int64  `json:"latency_ns"`
	Strategy  string `json:"strategy"`
}

// maxQuantifierDepth caps the quantifier depth of served formulas.
// Evaluation enumerates the representative sample once per quantified
// variable — O(sample^depth) — so unbounded depth is an easy CPU DoS on an
// open endpoint.  The legacy aliases all have depth 1; depth 4 already
// admits far richer sentences than the paper's examples while keeping the
// worst case bounded.  The CLI (topoinv ask) applies no such cap.
const maxQuantifierDepth = 4

// buildQuery resolves a request's query: an explicit formula in the textual
// query language, or a legacy name expanded through topoinv.QueryAlias.  The
// returned query has been parsed, canonicalized and schema-checked — there
// is exactly one path from request to evaluated AST.
func buildQuery(req askRequest, inst *topoinv.Instance) (topoinv.Query, error) {
	src := req.Formula
	fromAlias := false
	switch {
	case req.Query != "" && req.Formula != "":
		return nil, fmt.Errorf(`provide "formula" or the legacy "query" name, not both`)
	case req.Formula != "" && len(req.Regions) > 0:
		// Silently dropping the regions would let a client migrating from
		// the legacy form believe they constrain the formula.
		return nil, fmt.Errorf(`"regions" only applies to the legacy "query" form; name regions inside the formula instead`)
	case req.Query != "":
		var err error
		if src, err = topoinv.QueryAlias(req.Query, req.Regions...); err != nil {
			return nil, err
		}
		fromAlias = true
	case src == "":
		return nil, fmt.Errorf(`provide a "formula" or a legacy "query" name`)
	}
	q, err := topoinv.ParseQuery(src)
	if err == nil {
		err = q.CheckSchema(inst.Schema())
	}
	if err != nil {
		if fromAlias {
			// The byte offset indexes the server-side alias expansion, which
			// the client never sent; keep the message, drop the offset.
			var qe *topoinv.QueryError
			if errors.As(err, &qe) {
				return nil, fmt.Errorf("%s", qe.Msg)
			}
		}
		return nil, err
	}
	if d := topoinv.QueryDepth(q.Formula); d > maxQuantifierDepth {
		return nil, fmt.Errorf("quantifier depth %d exceeds the served limit of %d", d, maxQuantifierDepth)
	}
	return q.Formula, nil
}

func parseStrategy(name string) (topoinv.Strategy, error) {
	if name == "" {
		return topoinv.ViaInvariantFixpoint, nil
	}
	s, ok := strategies[name]
	if !ok {
		return 0, fmt.Errorf("unknown strategy %q (want direct | fo | fixpoint | linearized | auto)", name)
	}
	return s, nil
}

func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req askRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	inst, ok := s.get(req.ID)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown instance id")
		return
	}
	q, err := buildQuery(req, inst)
	if err != nil {
		queryError(w, err)
		return
	}
	strat, err := parseStrategy(req.Strategy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res := s.engine.AskResult(inst, q, strat)
	if res.Err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", res.Err)
		return
	}
	writeJSON(w, http.StatusOK, askResponse{
		Answer:    res.Answer,
		Canonical: res.Canonical,
		CacheHit:  res.CacheHit,
		AnswerHit: res.AnswerHit,
		Latency:   res.Latency.Nanoseconds(),
		// The strategy that actually ran: for "auto" this is the resolved
		// one (fixpoint or the direct fallback).
		Strategy: res.Strategy.String(),
	})
}

// queryError writes a query-construction failure.  Structured query-language
// errors carry the byte offset of the offending token into the response.
func queryError(w http.ResponseWriter, err error) {
	var qe *topoinv.QueryError
	if errors.As(err, &qe) {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": qe.Error(), "offset": qe.Offset})
		return
	}
	httpError(w, http.StatusBadRequest, "%v", err)
}

type batchRequest struct {
	Strategy string       `json:"strategy,omitempty"`
	Requests []askRequest `json:"requests"`
}

type batchItemResponse struct {
	Index     int    `json:"index"`
	Answer    bool   `json:"answer"`
	Canonical string `json:"canonical,omitempty"`
	Error     string `json:"error,omitempty"`
	// Offset carries the byte offset of a structured query-language error
	// into the request's formula text (absent for other errors, and for
	// legacy named queries, whose expansion the client never sent).
	Offset    *int   `json:"offset,omitempty"`
	CacheHit  bool   `json:"cache_hit"`
	AnswerHit bool   `json:"answer_hit"`
	Latency   int64  `json:"latency_ns"`
	Strategy  string `json:"strategy,omitempty"`
}

func batchItem(index int, res topoinv.BatchResult) batchItemResponse {
	out := batchItemResponse{
		Index:     index,
		Answer:    res.Answer,
		Canonical: res.Canonical,
		CacheHit:  res.CacheHit,
		AnswerHit: res.AnswerHit,
		Latency:   res.Latency.Nanoseconds(),
		Strategy:  res.Strategy.String(),
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	return out
}

// handleBatch evaluates many queries on the worker pool.  Per-request
// failures that are detectable before evaluation (a malformed formula, an
// unknown legacy name, a bad per-request strategy) become per-item errors —
// the rest of the batch still runs — while an unknown instance id fails the
// whole batch with 404 before any work starts (it is almost always a caller
// bug, and the NDJSON mode cannot change the status once streaming).
//
// With Accept: application/x-ndjson the response is NDJSON: one JSON object
// per line, written as each worker finishes, identified by "index".  The
// plain mode returns a JSON array in request order.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	defStrat, err := parseStrategy(req.Strategy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]batchItemResponse, len(req.Requests))
	var engReqs []topoinv.BatchRequest
	var origIdx []int
	for i, a := range req.Requests {
		inst, ok := s.get(a.ID)
		if !ok {
			httpError(w, http.StatusNotFound, "request %d: unknown instance id", i)
			return
		}
		out[i] = batchItemResponse{Index: i}
		q, err := buildQuery(a, inst)
		if err != nil {
			out[i].Error = err.Error()
			// Formula errors are structured: surface the offset like
			// /v1/ask does (buildQuery already strips alias offsets).
			var qe *topoinv.QueryError
			if errors.As(err, &qe) {
				off := qe.Offset
				out[i].Offset = &off
			}
			continue
		}
		engReq := topoinv.BatchRequest{Instance: inst, Query: q}
		if a.Strategy != "" {
			strat, err := parseStrategy(a.Strategy)
			if err != nil {
				out[i].Error = err.Error()
				continue
			}
			engReq.Strategy, engReq.StrategySet = strat, true
		}
		engReqs = append(engReqs, engReq)
		origIdx = append(origIdx, i)
	}

	if strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		// gone flips on client disconnect (or the first write failure):
		// from then on results are discarded silently instead of logging
		// one encode error per remaining item.  BatchStream must still be
		// drained — abandoning the channel would leak its workers — so the
		// already-submitted evaluations run to completion either way.
		gone := false
		emit := func(item batchItemResponse) {
			if gone {
				return
			}
			if r.Context().Err() != nil {
				gone = true
				return
			}
			if err := enc.Encode(item); err != nil {
				log.Printf("serve: ndjson client gone after item %d: %v", item.Index, err)
				gone = true
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		// Items rejected before evaluation are already final: emit them
		// first, then stream evaluation results in completion order.
		for i := range out {
			if out[i].Error != "" {
				emit(out[i])
			}
		}
		for res := range s.engine.BatchStream(engReqs, defStrat) {
			emit(batchItem(origIdx[res.Index], res))
		}
		return
	}

	for _, res := range s.engine.Batch(engReqs, defStrat) {
		out[origIdx[res.Index]] = batchItem(origIdx[res.Index], res)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
