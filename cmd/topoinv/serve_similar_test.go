package main

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/topoinv"
)

// simTestInstances builds a small corpus with a known exact-tier hit: two
// translated (hence homeomorphic) rectangles with distinct content keys,
// an annulus and a two-region overlap.
func simTestInstances(t *testing.T) (a, a2, b, c *topoinv.Instance) {
	t.Helper()
	mk := func(offset int64) *topoinv.Instance {
		return topoinv.MustBuild(topoinv.MustSchema("P"), map[string]topoinv.Region{
			"P": topoinv.Rect(offset, 0, offset+10, 10),
		})
	}
	a, a2 = mk(0), mk(500)
	b = topoinv.MustBuild(topoinv.MustSchema("P"), map[string]topoinv.Region{
		"P": topoinv.Annulus(0, 0, 30, 30, 3),
	})
	c = topoinv.MustBuild(topoinv.MustSchema("P", "Q"), map[string]topoinv.Region{
		"P": topoinv.Rect(0, 0, 4, 4),
		"Q": topoinv.Rect(2, 2, 6, 6),
	})
	return
}

func dataRequest(t *testing.T, inst *topoinv.Instance) loadRequest {
	t.Helper()
	data, err := topoinv.Encode(inst)
	if err != nil {
		t.Fatal(err)
	}
	return loadRequest{Data: base64.StdEncoding.EncodeToString(data)}
}

// loadInstance uploads an instance and touches its invariant endpoint —
// the similarity corpus is fed by the engine's (lazy) invariant-build
// path, so a freshly loaded instance joins it on first analysis.
func loadInstance(t *testing.T, baseURL string, inst *topoinv.Instance) string {
	t.Helper()
	var loaded loadResponse
	if resp := postJSON(t, baseURL+"/v1/instances", dataRequest(t, inst), &loaded); resp.StatusCode != http.StatusOK {
		t.Fatalf("load: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, fmt.Sprintf("%s/v1/instances/%s/invariant", baseURL, loaded.ID), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("invariant: status %d", resp.StatusCode)
	}
	return loaded.ID
}

func TestServeSimilar(t *testing.T) {
	ts := testServer(t)
	a, a2, b, c := simTestInstances(t)
	aID := loadInstance(t, ts.URL, a)
	a2ID := loadInstance(t, ts.URL, a2)
	loadInstance(t, ts.URL, b)
	loadInstance(t, ts.URL, c)

	var got similarResponse
	if resp := getJSON(t, fmt.Sprintf("%s/v1/instances/%s/similar?k=3", ts.URL, aID), &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("similar: status %d", resp.StatusCode)
	}
	if got.ID != aID || got.K != 3 {
		t.Fatalf("response identity %s k=%d, want %s k=3", got.ID, got.K, aID)
	}
	if got.Class == "" || got.Fingerprint == "" {
		t.Errorf("probe class/fingerprint missing: %+v", got)
	}
	if len(got.Matches) != 3 {
		t.Fatalf("got %d matches, want 3", len(got.Matches))
	}
	// The translated twin is homeomorphic: exact tier, distance 0, first.
	if m := got.Matches[0]; !m.Exact || m.Distance != 0 || m.ID != a2ID {
		t.Fatalf("first match %+v, want exact hit on %s", m, a2ID)
	}
	for _, m := range got.Matches[1:] {
		if m.Exact || m.Distance <= 0 {
			t.Errorf("approximate match %+v should carry positive distance", m)
		}
		if m.ID == aID {
			t.Error("probe matched itself")
		}
	}

	// The instance list carries the similarity identity (class/fingerprint).
	var entries []listEntry
	getJSON(t, ts.URL+"/v1/instances", &entries)
	if len(entries) != 4 {
		t.Fatalf("listed %d instances, want 4", len(entries))
	}
	for _, e := range entries {
		if e.Fingerprint == "" {
			t.Errorf("list entry %s has no fingerprint", e.ID)
		}
		if e.Class == "" {
			t.Errorf("list entry %s has no class (corpus is small, none abstain)", e.ID)
		}
	}
}

func TestServeSimilarProbe(t *testing.T) {
	ts := testServer(t)
	a, a2, b, _ := simTestInstances(t)
	aID := loadInstance(t, ts.URL, a)
	a2ID := loadInstance(t, ts.URL, a2)
	loadInstance(t, ts.URL, b)

	// An inline probe homeomorphic to a/a2 but with a third content key.
	probe := topoinv.MustBuild(topoinv.MustSchema("P"), map[string]topoinv.Region{
		"P": topoinv.Rect(900, 0, 910, 10),
	})
	req := dataRequest(t, probe)
	req.K = 2
	var got similarResponse
	if resp := postJSON(t, ts.URL+"/v1/similar", req, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("probe: status %d", resp.StatusCode)
	}
	if len(got.Matches) != 2 {
		t.Fatalf("got %d matches, want 2", len(got.Matches))
	}
	for i, wantID := range []string{aID, a2ID} {
		if m := got.Matches[i]; !m.Exact || m.Distance != 0 || m.ID != wantID {
			t.Errorf("match %d = %+v, want exact hit on %s", i, m, wantID)
		}
	}

	// The probe joined the similarity corpus but not the served registry.
	var entries []listEntry
	getJSON(t, ts.URL+"/v1/instances", &entries)
	for _, e := range entries {
		if e.ID == got.ID {
			t.Error("inline probe leaked into the instance registry")
		}
	}

	// A workload-shaped probe body works too (the POST /v1/instances fields).
	var wl similarResponse
	if resp := postJSON(t, ts.URL+"/v1/similar", loadRequest{Workload: "nested", Scale: 2, K: 3}, &wl); resp.StatusCode != http.StatusOK {
		t.Fatalf("workload probe: status %d", resp.StatusCode)
	}
	if len(wl.Matches) == 0 {
		t.Error("workload probe found no matches over a nonempty corpus")
	}
}

func TestServeSimilarErrors(t *testing.T) {
	ts := testServer(t)
	a, _, _, _ := simTestInstances(t)
	aID := loadInstance(t, ts.URL, a)

	resp, err := http.Get(ts.URL + "/v1/instances/nope/similar")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}

	for _, k := range []string{"0", "-3", "zebra"} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/instances/%s/similar?k=%s", ts.URL, aID, k))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("k=%s: status %d, want 400", k, resp.StatusCode)
		}
	}

	// Oversized k is capped, not rejected.
	var got similarResponse
	if resp := getJSON(t, fmt.Sprintf("%s/v1/instances/%s/similar?k=100000", ts.URL, aID), &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("huge k: status %d", resp.StatusCode)
	}
	if got.K != maxSimilarK {
		t.Errorf("huge k reported as %d, want capped at %d", got.K, maxSimilarK)
	}

	// A malformed probe body.
	if resp := postJSON(t, ts.URL+"/v1/similar", loadRequest{Workload: "no-such-workload"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad probe: status %d, want 400", resp.StatusCode)
	}
}

// TestServeSimilarRestart is the acceptance test for the similarity corpus:
// a second server over the same store directory must answer the same
// similarity query from the persisted index — zero invariant recomputes,
// every index entry loaded from SIMINDEX.bin rather than rebuilt.
func TestServeSimilarRestart(t *testing.T) {
	dir := t.TempDir()
	a, a2, b, c := simTestInstances(t)

	e1 := topoinv.NewEngine(topoinv.WithStore(dir))
	if err := e1.StoreErr(); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(newServer(e1).routes())
	var aID string
	for _, inst := range []*topoinv.Instance{a, a2, b, c} {
		id := loadInstance(t, ts1.URL, inst)
		if inst == a {
			aID = id
		}
	}
	var want similarResponse
	if resp := getJSON(t, fmt.Sprintf("%s/v1/instances/%s/similar?k=3", ts1.URL, aID), &want); resp.StatusCode != http.StatusOK {
		t.Fatalf("similar: status %d", resp.StatusCode)
	}
	if len(want.Matches) != 3 || !want.Matches[0].Exact {
		t.Fatalf("first process matches: %+v", want.Matches)
	}
	ts1.Close()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := topoinv.NewEngine(topoinv.WithStore(dir))
	if err := e2.StoreErr(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	ts2 := httptest.NewServer(newServer(e2).routes())
	defer ts2.Close()

	for _, inst := range []*topoinv.Instance{a, a2, b, c} {
		loadInstance(t, ts2.URL, inst)
	}
	var got similarResponse
	if resp := getJSON(t, fmt.Sprintf("%s/v1/instances/%s/similar?k=3", ts2.URL, aID), &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("similar after restart: status %d", resp.StatusCode)
	}
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("restart changed result count: %d vs %d", len(got.Matches), len(want.Matches))
	}
	for i := range want.Matches {
		if got.Matches[i] != want.Matches[i] {
			t.Errorf("restart changed match %d: %+v vs %+v", i, got.Matches[i], want.Matches[i])
		}
	}

	var st topoinv.EngineStats
	getJSON(t, ts2.URL+"/v1/stats", &st)
	if st.Computes != 0 {
		t.Errorf("restarted engine recomputed %d invariants, want 0", st.Computes)
	}
	if st.SimLoaded != 4 || st.SimReindexed != 0 {
		t.Errorf("sim index loaded %d / reindexed %d, want 4/0", st.SimLoaded, st.SimReindexed)
	}
	if st.Sim.Entries != 4 {
		t.Errorf("sim entries after restart = %d, want 4", st.Sim.Entries)
	}
}
