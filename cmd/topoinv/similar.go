// The similar subcommand ranks the instances of a persistent invariant
// store by topological similarity to a probe:
//
//	topoinv similar -store invariants -i map.tinv -k 5
//	topoinv similar -store invariants -workload nested -scale 2
//
// The probe comes from a binary blob (-i, as written by encode/import) or a
// built-in workload (-workload/-scale).  Opening the store reloads the
// similarity index persisted beside it (SIMINDEX.bin), reindexing any blobs
// the file does not cover, so the corpus is every instance the store has
// ever analysed.  Matches in the probe's homeomorphism equivalence class
// come first at distance 0 ("exact"); the rest are ranked by the
// feature-space distance.
//
// The store is single-writer: if a serve process holds its lock, this
// command fails with a "store busy" error — query the running server's
// GET /v1/instances/{id}/similar endpoint instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/topoinv"
)

func runSimilar(args []string) {
	fs := flag.NewFlagSet("similar", flag.ExitOnError)
	storeDir := fs.String("store", "", "directory of the disk-persistent invariant store (required: it is the corpus)")
	in := fs.String("i", "", "binary instance file as the probe (output of topoinv encode or import)")
	workloadName := fs.String("workload", "", "built-in workload as the probe instead of -i: landuse | hydrography | commune | nested | multicomponent")
	scale := fs.Int("scale", 1, "workload scale factor")
	k := fs.Int("k", 5, "number of matches to print")
	fs.Parse(args)

	if *storeDir == "" {
		log.Fatal("similar: -store is required (the store is the similarity corpus)")
	}
	if *k < 1 {
		log.Fatal("similar: -k must be a positive integer")
	}
	var inst *topoinv.Instance
	switch {
	case *in != "" && *workloadName != "":
		log.Fatal("similar: provide -i or -workload, not both")
	case *in != "":
		data, err := os.ReadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		if inst, err = topoinv.Decode(data); err != nil {
			log.Fatalf("similar: %s is not a valid instance blob: %v", *in, err)
		}
	case *workloadName != "":
		var err error
		if inst, err = generateWorkload(*workloadName, *scale); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("similar: provide a probe via -i or -workload")
	}

	engine := topoinv.NewEngine(topoinv.WithStore(*storeDir))
	if err := engine.StoreErr(); err != nil {
		log.Fatalf("similar: %v (a store locked by a running server must be queried over HTTP: GET /v1/instances/{id}/similar)", err)
	}
	defer engine.Close()

	matches, err := engine.Similar(inst, *k)
	if err != nil {
		log.Fatalf("similar: %v", err)
	}
	key, err := topoinv.InstanceKey(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe:   %s\n", key)
	if ent, ok := engine.SimEntry(inst); ok {
		if ent.Class != "" {
			fmt.Printf("class:   %s\n", ent.Class)
		} else {
			fmt.Printf("class:   (abstained: component over the canonical-code budget)\n")
		}
		fmt.Printf("fprint:  %s\n", ent.Fingerprint)
	}
	st := engine.Stats()
	fmt.Printf("corpus:  %d instances, %d exact classes (%d loaded from index, %d reindexed)\n",
		st.Sim.Entries, st.Sim.Classes, st.SimLoaded, st.SimReindexed)
	if len(matches) == 0 {
		fmt.Println("no matches: the store holds no other analysed instance")
		return
	}
	fmt.Printf("%-8s %-12s %s\n", "tier", "distance", "id")
	for _, m := range matches {
		tier := "approx"
		if m.Exact {
			tier = "exact"
		}
		fmt.Printf("%-8s %-12.6f %s\n", tier, m.Distance, m.ID)
	}
}
