package main

import (
	"bufio"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promSampleRe accepts one Prometheus text-exposition sample line:
// name{label="value",...} number.
var promSampleRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*` +
		`(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})?` +
		` (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$`)

// scrapeMetrics fetches /metrics, fails the test on any malformed exposition
// line, and returns every sample keyed by its full name (labels included).
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("GET /metrics: Content-Type %q, want the 0.0.4 text exposition type", ct)
	}
	samples := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparsable sample value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// sumPrefix sums every sample of one family (exact name, or name{...}).
func sumPrefix(samples map[string]float64, family string) float64 {
	var sum float64
	for name, v := range samples {
		if name == family || strings.HasPrefix(name, family+"{") {
			sum += v
		}
	}
	return sum
}

// TestMetricsEndpoint checks the exposition parses and that all five
// instrumented layers (engine, store, sweep, arrangement, HTTP) publish
// families — the registry is process-global, so families register as soon as
// the packages link, before any traffic.
func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)
	body := scrapeText(t, ts.URL)
	for _, family := range []string{
		"topoinv_engine_query_duration_seconds",
		"topoinv_engine_answer_cache_hit_ratio",
		"topoinv_store_op_duration_seconds",
		"topoinv_sweep_events_total",
		"topoinv_arrangement_build_seconds",
		"topoinv_http_requests_total",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("/metrics is missing family %s", family)
		}
	}
	scrapeMetrics(t, ts.URL) // line-level validation
}

func scrapeText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestMetricsMoveAfterAsk pins the tentpole acceptance criterion: an ask
// observably moves the engine latency histogram, the answer-cache counters
// and the per-route HTTP counters.  The registry is process-global (other
// tests in the package also drive it), so every assertion is a delta.
func TestMetricsMoveAfterAsk(t *testing.T) {
	ts := testServer(t)

	var loaded loadResponse
	if resp := postJSON(t, ts.URL+"/v1/instances", loadRequest{Workload: "nested", Scale: 1}, &loaded); resp.StatusCode != http.StatusOK {
		t.Fatalf("load: status %d", resp.StatusCode)
	}

	before := scrapeMetrics(t, ts.URL)

	ask := askRequest{ID: loaded.ID, Formula: "exists u . in(P, u)", Strategy: "auto"}
	var first, second askResponse
	if resp := postJSON(t, ts.URL+"/v1/ask", ask, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("ask: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/ask", ask, &second); resp.StatusCode != http.StatusOK {
		t.Fatalf("ask: status %d", resp.StatusCode)
	}
	if !second.AnswerHit {
		t.Errorf("second identical ask missed the answer cache: %+v", second)
	}

	after := scrapeMetrics(t, ts.URL)
	deltas := []struct {
		family string
		min    float64
	}{
		{"topoinv_engine_query_duration_seconds_count", 2},
		{"topoinv_engine_queries_total", 2},
		{"topoinv_engine_answer_cache_misses_total", 1},
		{"topoinv_engine_answer_cache_hits_total", 1},
		{"topoinv_http_request_duration_seconds_count", 2},
	}
	for _, d := range deltas {
		got := sumPrefix(after, d.family) - sumPrefix(before, d.family)
		if got < d.min {
			t.Errorf("%s moved by %v after two asks, want >= %v", d.family, got, d.min)
		}
	}
	askKey := `topoinv_http_requests_total{route="/v1/ask",status_class="2xx"}`
	if got := after[askKey] - before[askKey]; got < 2 {
		t.Errorf("%s moved by %v, want >= 2", askKey, got)
	}
}

// TestStatsEnvelope checks the PR-6 /v1/stats additions: no-cache headers,
// monotonic uptime, build info and the embedded metrics snapshot, without
// breaking the flat EngineStats fields older clients decode.
func TestStatsEnvelope(t *testing.T) {
	ts := testServer(t)
	var st statsResponse
	resp := getJSON(t, ts.URL+"/v1/stats", &st)
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "no-store") {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", st.UptimeSeconds)
	}
	if len(st.Metrics) == 0 {
		t.Error("stats carry no metrics snapshot")
	}
	if _, ok := st.Metrics["topoinv_engine_queries_total"]; !ok {
		t.Error("metrics snapshot is missing topoinv_engine_queries_total")
	}
}

// TestAskTimingsDebug checks ?debug=timings returns a span tree whose stages
// include the invariant fetch and evaluation, and that the field stays
// absent without the flag.
func TestAskTimingsDebug(t *testing.T) {
	ts := testServer(t)
	var loaded loadResponse
	postJSON(t, ts.URL+"/v1/instances", loadRequest{Workload: "nested", Scale: 1}, &loaded)

	// Traced ask first: a prior identical ask would land in the answer cache
	// and the traced request would short-circuit before the eval stage.
	ask := askRequest{ID: loaded.ID, Formula: "exists u . in(P, u)"}
	var traced askResponse
	if resp := postJSON(t, ts.URL+"/v1/ask?debug=timings", ask, &traced); resp.StatusCode != http.StatusOK {
		t.Fatalf("ask: status %d", resp.StatusCode)
	}
	var plain askResponse
	postJSON(t, ts.URL+"/v1/ask", ask, &plain)
	if plain.Timings != nil {
		t.Error("timings present without ?debug=timings")
	}
	if traced.Timings == nil {
		t.Fatal("?debug=timings returned no timings")
	}
	if traced.Timings.Stage != "ask" || traced.Timings.DurationNS <= 0 {
		t.Errorf("bad root span: %+v", traced.Timings)
	}
	stages := map[string]bool{}
	for _, c := range traced.Timings.Children {
		stages[c.Stage] = true
	}
	for _, want := range []string{"answer_cache", "eval"} {
		if !stages[want] {
			t.Errorf("span tree lacks stage %q: %+v", want, traced.Timings.Children)
		}
	}

	// Batch items carry their own trees behind the same flag.
	var batch []batchItemResponse
	breq := batchRequest{Requests: []askRequest{ask, ask}}
	if resp := postJSON(t, ts.URL+"/v1/batch?debug=timings", breq, &batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	for i, item := range batch {
		if item.Timings == nil {
			t.Errorf("batch item %d has no timings", i)
		}
	}
}
