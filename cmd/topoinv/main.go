// Command topoinv is a small CLI around the library: it generates one of the
// built-in workloads, computes its topological invariant, prints the
// compression statistics of the paper's practical-considerations section and
// optionally answers a built-in topological query with a chosen strategy.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/stats"
	"repro/topoinv"
)

func main() {
	workloadName := flag.String("workload", "landuse", "workload: landuse | hydrography | commune | nested | multicomponent")
	scale := flag.Int("scale", 1, "workload scale factor")
	strategy := flag.String("strategy", "direct", "query strategy: direct | fo | fixpoint | linearized")
	flag.Parse()

	inst, bpp, bpc := buildWorkload(*workloadName, *scale)
	c, err := topoinv.Measure(*workloadName, inst, bpp, bpc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(stats.Header())
	fmt.Println(c.Row())

	db, err := topoinv.Open(inst)
	if err != nil {
		log.Fatal(err)
	}
	name := inst.Schema().Names()[0]
	query := topoinv.NonEmpty(name)
	s := map[string]topoinv.Strategy{
		"direct":     topoinv.Direct,
		"fo":         topoinv.ViaInvariantFO,
		"fixpoint":   topoinv.ViaInvariantFixpoint,
		"linearized": topoinv.ViaLinearized,
	}[*strategy]
	ans, err := db.Ask(query, s)
	if err != nil {
		log.Fatalf("query with strategy %s: %v", *strategy, err)
	}
	fmt.Printf("query %s with strategy %s: %v\n", query, s, ans)
}

func buildWorkload(name string, scale int) (*topoinv.Instance, int, int) {
	switch name {
	case "landuse":
		inst, err := topoinv.LandUse(topoinv.DefaultLandUse(scale))
		fatal(err)
		return inst, 20, 3
	case "hydrography":
		inst, err := topoinv.Hydrography(topoinv.DefaultHydrography(scale))
		fatal(err)
		return inst, 20, 2
	case "commune":
		inst, err := topoinv.Commune(topoinv.DefaultCommune(scale))
		fatal(err)
		return inst, 18, 2
	case "nested":
		inst, err := topoinv.NestedRegions(scale + 1)
		fatal(err)
		return inst, 20, 2
	case "multicomponent":
		inst, err := topoinv.MultiComponent(scale + 2)
		fatal(err)
		return inst, 20, 2
	default:
		log.Fatalf("unknown workload %q", name)
		return nil, 0, 0
	}
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
