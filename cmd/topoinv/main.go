// Command topoinv is the CLI around the library.  It has five subcommands:
//
//	topoinv measure -workload landuse -scale 1 -strategy fixpoint
//	    generate a built-in workload, print the compression statistics of the
//	    paper's practical-considerations section (estimated and measured
//	    serialized bytes) and answer a built-in query with a chosen strategy;
//	topoinv encode -workload landuse -scale 1 -o inst.tinv [-invariant]
//	    serialize a workload instance (or its invariant) to the versioned
//	    binary format;
//	topoinv decode -i inst.tinv
//	    deserialize a blob and print a summary;
//	topoinv import -i map.geojson -o inst.tinv [-precision 7]
//	    convert a GeoJSON document (rationally snapped and validated) to a
//	    binary instance;
//	topoinv ask -q 'exists u . in(P, u)' [-i inst.tinv | -workload nested]
//	    parse a sentence of the FO(P,<x,<y) query language, canonicalize it
//	    and answer it with a chosen strategy;
//	topoinv similar -store dir [-i inst.tinv | -workload nested] -k 5
//	    rank the store's analysed instances by topological similarity to a
//	    probe: homeomorphism-class matches first, then feature-space
//	    neighbours;
//	topoinv serve -addr :8080 [-store dir]
//	    run the concurrent query engine behind a small HTTP JSON API, with an
//	    optional disk-persistent invariant store, Prometheus metrics at
//	    /metrics, structured logging and graceful shutdown;
//	topoinv loadgen -addr http://host:8080 -qps 200 -duration 10s
//	    drive a running server with a steady ask/batch/import mix and report
//	    throughput and latency percentiles (benchjson-compatible JSON via -o).
//
// Running with no subcommand behaves like "measure" (the historical CLI).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/stats"
	"repro/topoinv"
)

func main() {
	args := os.Args[1:]
	cmd := "measure"
	if len(args) > 0 {
		switch {
		case args[0] == "measure" || args[0] == "encode" || args[0] == "decode" || args[0] == "serve" || args[0] == "import" || args[0] == "ask" || args[0] == "similar" || args[0] == "loadgen":
			cmd, args = args[0], args[1:]
		case args[0] == "-h" || args[0] == "--help" || args[0] == "help":
			usage()
			return
		case len(args[0]) > 0 && args[0][0] != '-':
			fmt.Fprintf(os.Stderr, "topoinv: unknown command %q\n\n", args[0])
			usage()
			os.Exit(2)
		}
	}
	switch cmd {
	case "measure":
		runMeasure(args)
	case "encode":
		runEncode(args)
	case "decode":
		runDecode(args)
	case "import":
		runImport(args)
	case "ask":
		runAsk(args)
	case "similar":
		runSimilar(args)
	case "serve":
		runServe(args)
	case "loadgen":
		runLoadgen(args)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: topoinv <command> [flags]

commands:
  measure   compute invariant + compression statistics for a workload (default)
  encode    serialize a workload instance or invariant to binary
  decode    read a binary blob and print a summary
  import    convert a GeoJSON document to a binary instance
  ask       answer one FO(P,<x,<y) sentence against an instance
  similar   rank a store's instances by topological similarity to a probe
  serve     run the query engine as an HTTP JSON service
  loadgen   drive a running server at a target QPS and report latency percentiles

Run "topoinv <command> -h" for per-command flags.
`)
}

func runMeasure(args []string) {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	workloadName := fs.String("workload", "landuse", "workload: landuse | hydrography | commune | nested | multicomponent")
	scale := fs.Int("scale", 1, "workload scale factor")
	strategy := fs.String("strategy", "direct", "query strategy: direct | fo | fixpoint | linearized")
	fs.Parse(args)

	inst, bpp, bpc := buildWorkload(*workloadName, *scale)
	c, err := topoinv.Measure(*workloadName, inst, bpp, bpc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(stats.Header())
	fmt.Println(c.Row())
	fmt.Println()
	fmt.Println(stats.MeasuredHeader())
	fmt.Println(c.MeasuredRow())

	db, err := topoinv.Open(inst)
	if err != nil {
		log.Fatal(err)
	}
	name := inst.Schema().Names()[0]
	query := topoinv.NonEmpty(name)
	s, ok := strategies[*strategy]
	if !ok {
		log.Fatalf("unknown strategy %q", *strategy)
	}
	ans, err := db.Ask(query, s)
	if err != nil {
		log.Fatalf("query with strategy %s: %v", *strategy, err)
	}
	fmt.Printf("query %s with strategy %s: %v\n", query, s, ans)
}

var strategies = map[string]topoinv.Strategy{
	"direct":     topoinv.Direct,
	"fo":         topoinv.ViaInvariantFO,
	"fixpoint":   topoinv.ViaInvariantFixpoint,
	"linearized": topoinv.ViaLinearized,
	// auto picks fixpoint when the instance's invariant supports inversion
	// and falls back to direct otherwise, instead of erroring.
	"auto": topoinv.Auto,
}

func runEncode(args []string) {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	workloadName := fs.String("workload", "landuse", "workload to generate")
	scale := fs.Int("scale", 1, "workload scale factor")
	out := fs.String("o", "", "output file (default stdout)")
	asInvariant := fs.Bool("invariant", false, "encode the computed invariant instead of the instance")
	fs.Parse(args)

	inst, _, _ := buildWorkload(*workloadName, *scale)
	var data []byte
	var err error
	if *asInvariant {
		inv, cerr := topoinv.ComputeInvariant(inst)
		if cerr != nil {
			log.Fatal(cerr)
		}
		data, err = topoinv.EncodeInvariant(inv)
	} else {
		data, err = topoinv.Encode(inst)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d bytes to %s\n", len(data), *out)
}

func runDecode(args []string) {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	in := fs.String("i", "", "input file (default stdin)")
	fs.Parse(args)

	var data []byte
	var err error
	if *in == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*in)
	}
	if err != nil {
		log.Fatal(err)
	}
	// Dispatch on the payload-kind byte of the header so errors come from
	// the decoder that actually matches the blob.
	kind, err := topoinv.PayloadKind(data)
	if err != nil {
		log.Fatalf("invalid blob: %v", err)
	}
	if kind == topoinv.KindInvariant {
		inv, err := topoinv.DecodeInvariant(data)
		if err != nil {
			log.Fatalf("invalid invariant blob: %v", err)
		}
		fmt.Printf("invariant: %s\n", inv)
		fmt.Printf("schema:    %v\n", inv.Schema.Names())
		return
	}
	inst, err := topoinv.Decode(data)
	if err != nil {
		log.Fatalf("invalid instance blob: %v", err)
	}
	key, err := topoinv.InstanceKey(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %s\n", inst.Summarise())
	fmt.Printf("schema:   %v\n", inst.Schema().Names())
	fmt.Printf("key:      %s\n", key)
}

// buildWorkload generates a workload (shared with the serve subcommand) and
// returns it with the paper's bytes-per-point / bytes-per-cell accounting
// (Sequoia land use: 20/3, IGN commune: 18/2, others 20/2).
func buildWorkload(name string, scale int) (*topoinv.Instance, int, int) {
	inst, err := generateWorkload(name, scale)
	if err != nil {
		log.Fatal(err)
	}
	bpp, bpc := 20, 2
	switch name {
	case "landuse":
		bpc = 3
	case "commune":
		bpp = 18
	}
	return inst, bpp, bpc
}
