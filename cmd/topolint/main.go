// Command topolint runs the repo-specific static-analysis suite
// (internal/lint) over the module and reports file:line:col diagnostics,
// exiting nonzero when any survive. Findings are suppressed only by explicit
// //lint:allow <analyzer>(reason) directives in the source.
//
// Usage:
//
//	go run ./cmd/topolint [-json] [-list] [packages]
//
// Packages default to ./... and are resolved by `go list`, so any pattern
// the go tool accepts works. -json emits a machine-readable report (the CI
// artifact); -list prints the analyzer catalogue and exits.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	list := flag.Bool("list", false, "print the analyzer catalogue and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: topolint [-json] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "topolint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.NewLoader(wd).Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topolint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "topolint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "topolint: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
