// Command gamelab explores the Ehrenfeucht–Fraïssé machinery behind the
// paper's Section 4: FOr-equivalence of linear orders (the Zone B argument of
// Lemma 4.6), word types and conjugates (Lemma 4.8), and the fixpoint /
// counting queries on invariants that motivate Theorems 3.2 and 3.4
// (connectivity and parity of the number of connected components).
package main

import (
	"fmt"
	"log"

	"repro/internal/ef"
	"repro/internal/invariant"
	"repro/internal/logic"
	"repro/topoinv"
)

func main() {
	fmt.Println("FOr-equivalence of linear orders (orders are equivalent iff equal or both ≥ 2^r−1):")
	for _, r := range []int{1, 2, 3} {
		fmt.Printf("  r=%d:", r)
		for _, pair := range [][2]int{{2, 3}, {3, 4}, {7, 9}} {
			fmt.Printf("  |%d| vs |%d| → %v", pair[0], pair[1], ef.OrdersEquivalent(pair[0], pair[1], r))
		}
		fmt.Println()
	}

	fmt.Println("\nWord types (rank 2): 0^5 vs 0^6 equivalent?", ef.WordsEquivalent(ef.Word{0, 0, 0, 0, 0}, ef.Word{0, 0, 0, 0, 0, 0}, 1, 2))
	fmt.Println("Conjugates of 011:", ef.Conjugates(ef.Word{0, 1, 1}))

	fmt.Println("\nFixpoint and counting queries on topological invariants (Theorems 3.2/3.4):")
	for _, n := range []int{2, 3, 4, 5} {
		inst, err := topoinv.MultiComponent(n)
		if err != nil {
			log.Fatal(err)
		}
		inv := invariant.MustCompute(inst)
		s := inv.ToStructure()
		// Parity of the number of P-faces is a fixpoint+counting query —
		// the paper's canonical example of a query beyond plain fixpoint.
		even := logic.MustEval(s, logic.EvenCardinality(invariant.RegionRelation("P")), nil)
		comps := inv.Components().Count()
		fmt.Printf("  %d components: even number of cells in P? %v (components=%d)\n", n, even, comps)
	}
}
