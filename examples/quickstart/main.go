// Command quickstart shows the minimal end-to-end use of the public API:
// build a spatial instance, compute its topological invariant, and answer a
// topological query against the invariant instead of the raw data.
package main

import (
	"fmt"
	"log"

	"repro/topoinv"
)

func main() {
	schema := topoinv.MustSchema("parks", "lake")
	inst := topoinv.MustBuild(schema, map[string]topoinv.Region{
		"parks": topoinv.Rect(0, 0, 100, 100),
		"lake":  topoinv.Rect(30, 30, 60, 60),
	})

	db, err := topoinv.Open(inst)
	if err != nil {
		log.Fatal(err)
	}
	inv, err := db.Invariant()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instance:", inst.Summarise())
	fmt.Println("invariant:", inv)

	for _, q := range []struct {
		name  string
		query topoinv.Query
	}{
		{"lake intersects parks", topoinv.Intersects("lake", "parks")},
		{"lake contained in parks", topoinv.Contained("lake", "parks")},
		{"they meet only on boundaries", topoinv.BoundaryOnlyIntersection("lake", "parks")},
	} {
		direct, err := db.Ask(q.query, topoinv.Direct)
		if err != nil {
			log.Fatal(err)
		}
		viaInv, err := db.Ask(q.query, topoinv.ViaInvariantFixpoint)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s direct=%v via-invariant=%v\n", q.name, direct, viaInv)
	}
}
