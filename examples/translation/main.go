// Command translation demonstrates Section 4 of the paper: a topological
// query over a single-region database is translated once and answered on the
// topological invariant — either as a first-order query (Theorem 4.9, via the
// cones/cycles normal form) or as a fixpoint query (Theorem 4.1/4.2) — and
// the answers agree with direct evaluation across topologically equivalent
// instances.
package main

import (
	"fmt"
	"log"

	"repro/internal/invariant"
	"repro/internal/pointfo"
	"repro/internal/translate"
	"repro/topoinv"
)

func main() {
	query := topoinv.HasInterior("P")
	fo := translate.ToFOQuery("P", query)
	fix := translate.ToFixpointQuery(query, true)

	instances := map[string]*topoinv.Instance{
		"disk":        mustInstance(map[string]topoinv.Region{"P": topoinv.Rect(0, 0, 20, 20)}),
		"annulus":     mustInstance(map[string]topoinv.Region{"P": topoinv.Annulus(0, 0, 40, 40, 6)}),
		"curve":       mustInstance(map[string]topoinv.Region{"P": topoinv.FromPolyline(topoinv.MustPolyline(topoinv.Pt(0, 0), topoinv.Pt(30, 0), topoinv.Pt(30, 30)))}),
		"lone point":  mustInstance(map[string]topoinv.Region{"P": topoinv.FromPoint(topoinv.Pt(5, 5))}),
		"two squares": mustNested(),
	}

	fmt.Printf("query: %s (quantifier depth %d)\n\n", query, pointfo.QuantifierDepth(query))
	fmt.Printf("%-12s %-8s %-14s %-16s\n", "instance", "direct", "FO on top(I)", "fixpoint on top(I)")
	for name, inst := range instances {
		db, err := topoinv.Open(inst)
		if err != nil {
			log.Fatal(err)
		}
		direct, err := db.Ask(query, topoinv.Direct)
		if err != nil {
			log.Fatal(err)
		}
		inv := invariant.MustCompute(inst)
		viaFO, err := fo.EvaluateOnInvariant(inv)
		if err != nil {
			log.Fatal(err)
		}
		viaFix, err := fix.EvaluateOnInvariant(inv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-8v %-14v %-16v\n", name, direct, viaFO, viaFix)
	}
	fmt.Printf("\n≈r classes evaluated while translating to FO: %d\n", fo.ClassesEvaluated)
	fmt.Println("(the FO translation cost grows hyperexponentially with quantifier depth;")
	fmt.Println(" the fixpoint translation is linear in the query — Theorems 4.9 vs 4.1)")
}

func mustInstance(regs map[string]topoinv.Region) *topoinv.Instance {
	return topoinv.MustBuild(topoinv.MustSchema("P"), regs)
}

func mustNested() *topoinv.Instance {
	inst, err := topoinv.NestedRegions(2)
	if err != nil {
		log.Fatal(err)
	}
	return inst
}
