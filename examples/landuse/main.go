// Command landuse reproduces the paper's practical-considerations
// measurements on synthetic cartographic workloads: how much smaller the
// topological invariant is than the raw data, and the lines-per-point degree
// statistics (experiments E1–E4 of EXPERIMENTS.md).
package main

import (
	"fmt"
	"log"

	"repro/internal/stats"
	"repro/topoinv"
)

func main() {
	fmt.Println("Invariant vs. raw data size (paper section 4, practical considerations)")
	fmt.Println(stats.Header())

	land, err := topoinv.LandUse(topoinv.DefaultLandUse(2))
	if err != nil {
		log.Fatal(err)
	}
	report("ground-occ", land, 20, 3)

	hydro, err := topoinv.Hydrography(topoinv.DefaultHydrography(2))
	if err != nil {
		log.Fatal(err)
	}
	report("rivers-lakes", hydro, 20, 2)

	commune, err := topoinv.Commune(topoinv.DefaultCommune(1))
	if err != nil {
		log.Fatal(err)
	}
	report("commune", commune, 18, 2)

	fmt.Println()
	fmt.Println("Paper reference points: ground occupancy ≈ 1/90 of raw size,")
	fmt.Println("rivers/lakes ≈ 1/300, IGN Orange ≈ 1/72; average lines per point 4.5.")
}

func report(name string, inst *topoinv.Instance, bytesPerPoint, bytesPerCell int) {
	c, err := topoinv.Measure(name, inst, bytesPerPoint, bytesPerCell)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Row())
}
