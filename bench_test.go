// Package repro_test holds the benchmark harness: one benchmark per table /
// figure / design-choice ablation listed in DESIGN.md and EXPERIMENTS.md.
// Each compression benchmark reports the paper's headline metric
// (raw-bytes / invariant-bytes) via b.ReportMetric in addition to timing the
// invariant construction.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/arrangement"
	"repro/internal/invariant"
	"repro/internal/logic"
	"repro/internal/pointfo"
	"repro/internal/relational"
	"repro/internal/simindex"
	"repro/internal/translate"
	"repro/topoinv"
)

func benchCompression(b *testing.B, inst *topoinv.Instance, name string, bpp, bpc int) {
	b.Helper()
	var ratio float64
	for i := 0; i < b.N; i++ {
		c, err := topoinv.Measure(name, inst, bpp, bpc)
		if err != nil {
			b.Fatal(err)
		}
		ratio = c.Ratio
	}
	b.ReportMetric(ratio, "raw/inv")
}

// BenchmarkE1LandUseCompression regenerates experiment E1 (Sequoia ground
// occupancy: paper ratio ≈ 90).
func BenchmarkE1LandUseCompression(b *testing.B) {
	inst, err := topoinv.LandUse(topoinv.DefaultLandUse(2))
	if err != nil {
		b.Fatal(err)
	}
	benchCompression(b, inst, "ground-occ", 20, 3)
}

// BenchmarkE2HydroCompression regenerates experiment E2 (rivers/lakes: paper
// ratio ≈ 300).
func BenchmarkE2HydroCompression(b *testing.B) {
	inst, err := topoinv.Hydrography(topoinv.DefaultHydrography(2))
	if err != nil {
		b.Fatal(err)
	}
	benchCompression(b, inst, "rivers-lakes", 20, 2)
}

// BenchmarkE3CommuneCompression regenerates experiment E3 (IGN Orange: paper
// ratio ≈ 72).
func BenchmarkE3CommuneCompression(b *testing.B) {
	inst, err := topoinv.Commune(topoinv.DefaultCommune(1))
	if err != nil {
		b.Fatal(err)
	}
	benchCompression(b, inst, "commune", 18, 2)
}

// BenchmarkE4DegreeStats regenerates experiment E4 (lines-per-point degree
// statistics; paper: average 4.5, maxima 12 / 8).
func BenchmarkE4DegreeStats(b *testing.B) {
	inst, err := topoinv.LandUse(topoinv.DefaultLandUse(2))
	if err != nil {
		b.Fatal(err)
	}
	var avg float64
	for i := 0; i < b.N; i++ {
		c, err := topoinv.Measure("ground-occ", inst, 20, 3)
		if err != nil {
			b.Fatal(err)
		}
		avg = c.AvgDegree
	}
	b.ReportMetric(avg, "avg-lines/point")
}

// BenchmarkE5Strategies regenerates experiment E5: the four evaluation
// strategies of the paper's practical-considerations discussion on a
// single-region nested instance.
func BenchmarkE5Strategies(b *testing.B) {
	inst, err := topoinv.NestedRegions(3)
	if err != nil {
		b.Fatal(err)
	}
	query := topoinv.HasInterior("P")
	for _, s := range []topoinv.Strategy{topoinv.Direct, topoinv.ViaInvariantFO, topoinv.ViaInvariantFixpoint, topoinv.ViaLinearized} {
		b.Run(s.String(), func(b *testing.B) {
			db, err := topoinv.Open(inst)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.Invariant(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Ask(query, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6TranslationCost regenerates experiment E6: FO-target class
// enumeration (hyperexponential) versus fixpoint-target construction (linear
// in query size).
func BenchmarkE6TranslationCost(b *testing.B) {
	q := topoinv.NonEmpty("P")
	b.Run("fo-target-classes", func(b *testing.B) {
		var classes int
		for i := 0; i < b.N; i++ {
			fo := translate.ToFOQuery("P", q)
			n, err := fo.EnumerateClasses(4, 1)
			if err != nil {
				b.Fatal(err)
			}
			classes = n
		}
		b.ReportMetric(float64(classes), "classes")
	})
	b.Run("fixpoint-target", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = translate.ToFixpointQuery(q, false)
		}
		b.ReportMetric(float64(pointfo.Size(q)), "query-size")
	})
}

// BenchmarkE7FixpointCapture regenerates experiment E7: fixpoint+counting
// queries evaluated on invariants (parity of the number of cells of a region,
// connectivity via fixpoint reachability).
func BenchmarkE7FixpointCapture(b *testing.B) {
	inst, err := topoinv.MultiComponent(4)
	if err != nil {
		b.Fatal(err)
	}
	inv, err := topoinv.ComputeInvariant(inst)
	if err != nil {
		b.Fatal(err)
	}
	s := inv.ToStructure()
	parity := logic.EvenCardinality(invariant.RegionRelation("P"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = logic.MustEval(s, parity, nil)
	}
}

// BenchmarkF1ComponentTree regenerates the Fig. 1 / Fig. 2 structural
// experiment: connected components, distances and the component tree.
func BenchmarkF1ComponentTree(b *testing.B) {
	inst := topoinv.MustBuild(topoinv.MustSchema("P", "Q", "R"), map[string]topoinv.Region{
		"P": topoinv.Annulus(0, 0, 30, 30, 2),
		"Q": topoinv.Rect(10, 10, 20, 20),
		"R": topoinv.Rect(40, 0, 50, 10),
	})
	for i := 0; i < b.N; i++ {
		inv, err := topoinv.ComputeInvariant(inst)
		if err != nil {
			b.Fatal(err)
		}
		_ = inv.Components().TreeString()
	}
}

// BenchmarkF9CycleEquivalence times the Ehrenfeucht–Fraïssé cycle-type
// comparison behind the Fig. 9 discussion (cyclic order versus successor).
func BenchmarkF9CycleEquivalence(b *testing.B) {
	inv, err := topoinv.ComputeInvariant(topoinv.MustBuild(topoinv.MustSchema("P", "Q"), map[string]topoinv.Region{
		"P": topoinv.Rect(0, 0, 4, 4),
		"Q": topoinv.Rect(2, 2, 6, 6),
	}))
	if err != nil {
		b.Fatal(err)
	}
	sa := inv.ToStructure()
	sb := inv.ToStructure()
	for i := 0; i < b.N; i++ {
		if !relational.Isomorphic(sa, sb) {
			b.Fatal("identical structures should be isomorphic")
		}
	}
}

// BenchmarkEngineInvariant compares a cold invariant computation (arrangement
// built from scratch every iteration) against the engine's content-addressed
// cache-hit path (hash the encoded instance, look up the invariant — no
// arrangement work).  The cached path should be orders of magnitude faster.
func BenchmarkEngineInvariant(b *testing.B) {
	inst, err := topoinv.LandUse(topoinv.DefaultLandUse(1))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := topoinv.NewEngine()
			if _, err := e.Invariant(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		e := topoinv.NewEngine()
		if _, err := e.Invariant(inst); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Invariant(inst); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := e.Stats()
		if st.CacheHits == 0 {
			b.Fatal("cached path never hit the cache")
		}
	})
}

// BenchmarkEngineBatch measures batch-query throughput (queries/sec) across
// worker-pool sizes.  Each iteration evaluates one batch of fixpoint queries
// over three distinct (cached) instances.
func BenchmarkEngineBatch(b *testing.B) {
	var instances []*topoinv.Instance
	for levels := 2; levels <= 4; levels++ {
		inst, err := topoinv.NestedRegions(levels)
		if err != nil {
			b.Fatal(err)
		}
		instances = append(instances, inst)
	}
	const batchSize = 64
	reqs := make([]topoinv.BatchRequest, batchSize)
	for i := range reqs {
		reqs[i] = topoinv.BatchRequest{
			Instance: instances[i%len(instances)],
			Query:    topoinv.HasInterior("P"),
		}
	}
	workers := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			e := topoinv.NewEngine(topoinv.WithWorkers(w))
			// Warm the invariant cache so the benchmark isolates query
			// evaluation throughput from the one-time arrangement cost.
			for _, inst := range instances {
				if _, err := e.Invariant(inst); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results := e.Batch(reqs, topoinv.ViaInvariantFixpoint)
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.StopTimer()
			qps := float64(b.N*batchSize) / b.Elapsed().Seconds()
			b.ReportMetric(qps, "queries/sec")
		})
	}
}

// BenchmarkCodec measures the binary codec itself: encode/decode throughput
// for a dense polygonal instance and its invariant, reporting the measured
// serialized sizes the compression claim is judged on.
func BenchmarkCodec(b *testing.B) {
	inst, err := topoinv.LandUse(topoinv.DefaultLandUse(1))
	if err != nil {
		b.Fatal(err)
	}
	inv, err := topoinv.ComputeInvariant(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode-instance", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			data, err := topoinv.Encode(inst)
			if err != nil {
				b.Fatal(err)
			}
			n = len(data)
		}
		b.ReportMetric(float64(n), "bytes")
	})
	b.Run("decode-instance", func(b *testing.B) {
		data, err := topoinv.Encode(inst)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := topoinv.Decode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-invariant", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			data, err := topoinv.EncodeInvariant(inv)
			if err != nil {
				b.Fatal(err)
			}
			n = len(data)
		}
		b.ReportMetric(float64(n), "bytes")
	})
	b.Run("decode-invariant", func(b *testing.B) {
		data, err := topoinv.EncodeInvariant(inv)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := topoinv.DecodeInvariant(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIntersection compares the default sweep-built arrangement
// against the quadratic all-pairs point-location reference (design-choice
// ablations of DESIGN.md).
func BenchmarkAblationIntersection(b *testing.B) {
	inst, err := topoinv.LandUse(topoinv.DefaultLandUse(1))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := arrangement.Build(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-pairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := arrangement.Build(inst, arrangement.WithNaivePairFinding()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// depthQuery builds an alternating-quantifier sentence of the given
// quantifier depth over two region names: ∃v0, ∀v1, ∃v2, … with membership
// atoms per variable and order atoms linking consecutive variables.  The
// innermost condition demands an interior point that is not in its region,
// so the sentence is unsatisfiable: evaluation can never stop early on a
// lucky witness, and the benchmark pins the exhaustive worst case the
// server's depth cap guards against.
func depthQuery(a, c string, depth int) topoinv.Query {
	var rest func(i int) pointfo.PointFormula
	rest = func(i int) pointfo.PointFormula {
		if i == depth {
			last := fmt.Sprintf("v%d", depth-1)
			return pointfo.PAnd{Fs: []pointfo.PointFormula{
				pointfo.InInterior{Region: a, Var: last},
				pointfo.PNot{F: pointfo.In{Region: a, Var: last}},
			}}
		}
		v := fmt.Sprintf("v%d", i)
		memb := pointfo.PointFormula(pointfo.In{Region: a, Var: v})
		if i%2 == 1 {
			memb = pointfo.In{Region: c, Var: v}
		}
		atoms := []pointfo.PointFormula{memb}
		if i > 0 {
			prev := fmt.Sprintf("v%d", i-1)
			if i%2 == 0 {
				atoms = append(atoms, pointfo.LessX{L: prev, R: v})
			} else {
				atoms = append(atoms, pointfo.LessY{L: v, R: prev})
			}
		}
		if i%2 == 0 {
			return pointfo.PExists{Vars: []string{v}, Body: pointfo.PAnd{Fs: append(atoms, rest(i+1))}}
		}
		return pointfo.PForall{Vars: []string{v}, Body: pointfo.PImplies{L: pointfo.PAnd{Fs: atoms}, R: rest(i + 1)}}
	}
	return rest(0)
}

// BenchmarkEvalDepth pins the quantifier-depth scaling of sentence
// evaluation on the E1 and E3 workloads: the compiled bitset evaluator
// (membership matrix + word-parallel quantifier plans) against the tree-walk
// reference that re-asks the geometry per atom.  The tree walk is O(n^depth)
// point tuples with exact-rational containment tests per atom, so it only
// runs to depth 3; compiled runs the full 1–4 range the server now admits.
func BenchmarkEvalDepth(b *testing.B) {
	// Region pairs are picked from classes that actually own parcels at
	// these scales (e.g. E1 scale 1 spreads 8 parcels over 9 classes, so
	// some classes are empty and would short-circuit every quantifier).
	workloads := []struct {
		name string
		a, c string
		mk   func() (*topoinv.Instance, error)
	}{
		{"E1", "class07", "class04", func() (*topoinv.Instance, error) { return topoinv.LandUse(topoinv.DefaultLandUse(1)) }},
		{"E3", "class00", "class01", func() (*topoinv.Instance, error) { return topoinv.Commune(topoinv.DefaultCommune(1)) }},
	}
	for _, w := range workloads {
		inst, err := w.mk()
		if err != nil {
			b.Fatal(err)
		}
		ev, err := pointfo.NewEvaluator(inst)
		if err != nil {
			b.Fatal(err)
		}
		ce, err := pointfo.CompileEvaluator(inst)
		if err != nil {
			b.Fatal(err)
		}
		for depth := 1; depth <= 4; depth++ {
			q := depthQuery(w.a, w.c, depth)
			b.Run(fmt.Sprintf("%s/depth=%d/compiled", w.name, depth), func(b *testing.B) {
				b.ReportMetric(float64(ce.SampleSize()), "sample-points")
				for i := 0; i < b.N; i++ {
					if _, err := ce.EvalPoint(q, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
			if depth > 3 {
				continue
			}
			b.Run(fmt.Sprintf("%s/depth=%d/tree", w.name, depth), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ev.EvalPoint(q, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDirectAskCachedEvaluator measures Direct asks through the engine
// with the Boolean answer cache deliberately thrashed (capacity 16, 64
// distinct formulas round-robin), so every ask re-evaluates its sentence —
// but against the compiled evaluator from the engine's evaluator cache
// rather than one rebuilt from geometry per ask.
func BenchmarkDirectAskCachedEvaluator(b *testing.B) {
	inst, err := topoinv.LandUse(topoinv.DefaultLandUse(1))
	if err != nil {
		b.Fatal(err)
	}
	// 64 distinct sentences over the populated classes (02–08 at scale 1):
	// 49 ordered pairs at depth 2, then 15 more at depth 3.
	queries := make([]topoinv.Query, 64)
	for i := range queries {
		depth, j := 2, i
		if j >= 49 {
			depth, j = 3, j-49
		}
		a := fmt.Sprintf("class%02d", 2+j/7)
		c := fmt.Sprintf("class%02d", 2+j%7)
		queries[i] = depthQuery(a, c, depth)
	}
	eng := topoinv.NewEngine(topoinv.WithAnswerCapacity(16))
	// Prime the evaluator cache with a query outside the timed rotation, so
	// every timed ask misses the answer cache but hits the evaluator cache.
	if _, err := eng.Ask(inst, depthQuery("class02", "class05", 4), topoinv.Direct); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Ask(inst, queries[i%len(queries)], topoinv.Direct); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stats := eng.Stats()
	if stats.EvalHits == 0 {
		b.Fatal("no evaluator-cache hits; Direct asks are rebuilding evaluators")
	}
	b.ReportMetric(float64(stats.EvalHits), "eval-hits")
}

// simBenchCorpus builds a similarity-index corpus of the given size from a
// handful of real invariants, tiled out with deterministic feature-space
// perturbations (clones drop the exact-tier class so the k-NN structure —
// not the O(1) class lookup — is what gets measured).
func simBenchCorpus(b *testing.B, n int) []*simindex.Entry {
	b.Helper()
	shapes := []map[string]topoinv.Region{
		{"P": topoinv.Rect(0, 0, 10, 10)},
		{"P": topoinv.Annulus(0, 0, 30, 30, 3)},
		{"P": topoinv.Rect(0, 0, 4, 4), "Q": topoinv.Rect(2, 2, 6, 6)},
		{"P": topoinv.Annulus(0, 0, 40, 40, 5), "Q": topoinv.Rect(50, 0, 60, 10)},
	}
	seeds := make([]*simindex.Entry, 0, len(shapes))
	for i, regions := range shapes {
		names := make([]string, 0, len(regions))
		for name := range regions {
			names = append(names, name)
		}
		inst := topoinv.MustBuild(topoinv.MustSchema(names...), regions)
		inv, err := topoinv.ComputeInvariant(inst)
		if err != nil {
			b.Fatal(err)
		}
		seeds = append(seeds, simindex.MakeEntry(fmt.Sprintf("seed-%d", i), inv))
	}
	entries := make([]*simindex.Entry, 0, n)
	for i := 0; i < n; i++ {
		seed := seeds[i%len(seeds)]
		e := *seed
		e.ID = fmt.Sprintf("inst-%04d", i)
		e.Class = ""
		for d := range e.Vec {
			e.Vec[d] += float64((i*31+d*7)%97) / 1e4
		}
		entries = append(entries, &e)
	}
	return entries
}

// BenchmarkSimIndex measures the similarity subsystem over a 256-instance
// corpus: index construction, then top-k retrieval on the VP-tree-accelerated
// path against the exact linear scan it must agree with.  The accelerated
// query is the acceptance-gated number (sub-millisecond per top-k).
func BenchmarkSimIndex(b *testing.B) {
	const corpus, k = 256, 10
	entries := simBenchCorpus(b, corpus)
	probe := *entries[0]
	probe.ID = "probe"
	for d := range probe.Vec {
		probe.Vec[d] += 0.003
	}

	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x := simindex.New()
			for _, e := range entries {
				x.Add(e)
			}
			x.Rebuild()
		}
	})

	x := simindex.New()
	for _, e := range entries {
		x.Add(e)
	}
	x.Rebuild()
	want := x.ScanQuery(&probe, k)
	if len(want) != k {
		b.Fatalf("scan returned %d matches, want %d", len(want), k)
	}
	b.Run("query-vptree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := x.Query(&probe, k); len(got) != k {
				b.Fatalf("got %d matches, want %d", len(got), k)
			}
		}
	})
	b.Run("query-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := x.ScanQuery(&probe, k); len(got) != k {
				b.Fatalf("got %d matches, want %d", len(got), k)
			}
		}
	})
}

// BenchmarkAblationIso compares invariant isomorphism via canonical codes
// against the backtracking search.
func BenchmarkAblationIso(b *testing.B) {
	mk := func(offset int64) *invariant.Invariant {
		inst := topoinv.MustBuild(topoinv.MustSchema("P", "Q"), map[string]topoinv.Region{
			"P": topoinv.Annulus(offset, 0, offset+30, 30, 3),
			"Q": topoinv.Rect(offset+10, 10, offset+20, 20),
		})
		inv, err := topoinv.ComputeInvariant(inst)
		if err != nil {
			b.Fatal(err)
		}
		return inv
	}
	a, c := mk(0), mk(500)
	b.Run("canonical-code", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if translate.CanonicalCode(a) != translate.CanonicalCode(c) {
				b.Fatal("should be equivalent")
			}
		}
	})
	b.Run("backtracking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !invariant.Isomorphic(a, c) {
				b.Fatal("should be equivalent")
			}
		}
	})
}
