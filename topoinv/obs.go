package topoinv

import (
	"context"
	"io"

	"repro/internal/obs"
)

// Observability surface: the dependency-free metrics/tracing/logging toolkit
// every layer of the library reports into (package obs).  The engine, store,
// sweep and arrangement packages register their instruments on the shared
// default registry at init; Metrics exposes that registry so front ends (the
// HTTP server, the load generator) can add their own instruments and render
// everything together.
type (
	// Span is a process-local stage recorder with nested children.  The nil
	// *Span is a fully functional no-op: instrumented paths pay one pointer
	// test when tracing is off.
	Span = obs.Span
	// StageTiming is the JSON rendering of a span tree (the "timings" field
	// of ask/batch responses behind ?debug=timings).
	StageTiming = obs.StageTiming
	// MetricsRegistry is a set of named instruments renderable as Prometheus
	// text or a JSON snapshot.
	MetricsRegistry = obs.Registry
	// MetricsHistogram is a fixed-bucket latency/size histogram with
	// lock-free observation and quantile estimation.
	MetricsHistogram = obs.Histogram
)

// Metrics is the process-wide default registry, rendered at GET /metrics and
// embedded in /v1/stats.
var Metrics = obs.Default

var (
	// StartSpan starts a root timing span.
	StartSpan = obs.StartSpan
	// NewLogger builds a text or JSON slog.Logger at a minimum level.
	NewLogger = obs.NewLogger
	// ParseLogLevel maps debug | info | warn | error to a slog.Level.
	ParseLogLevel = obs.ParseLevel
	// NewRequestID returns a fresh random request id.
	NewRequestID = obs.NewRequestID
	// WithRequestID attaches a request id to a context; the engine's log
	// lines carry it as req_id.
	WithRequestID = obs.WithRequestID
	// RequestIDFrom extracts the request id from a context ("" if absent).
	RequestIDFrom = obs.RequestID
	// NewHistogram builds a standalone histogram (not registered anywhere) —
	// the load generator aggregates client-side latencies with one.
	NewHistogram = obs.NewHistogram
)

// Default histogram bucket layouts.
var (
	// LatencyBuckets spans 1µs–10s, the default for duration histograms.
	LatencyBuckets = obs.DefLatencyBuckets
	// SizeBuckets spans 64B–64MB, the default for payload-size histograms.
	SizeBuckets = obs.DefSizeBuckets
)

// WriteMetrics renders every instrument of the default registry in the
// Prometheus text exposition format.
func WriteMetrics(w io.Writer) error { return obs.Default.WritePrometheus(w) }

// MetricsSnapshot returns the default registry as a JSON-friendly map
// (histograms carry count, sum and p50/p90/p99).
func MetricsSnapshot() map[string]any { return obs.Default.Snapshot() }

// SpanFromContext returns the span attached to a context, or nil.
func SpanFromContext(ctx context.Context) *Span { return obs.SpanFrom(ctx) }

// ContextWithSpan attaches a span to a context.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return obs.WithSpan(ctx, s)
}
