// Package topoinv is the public API of the topological-invariant spatial
// database library, a reproduction of Segoufin & Vianu, "Querying Spatial
// Databases via Topological Invariants".
//
// The typical workflow is:
//
//	schema := topoinv.MustSchema("P", "Q")
//	inst := topoinv.MustBuild(schema, map[string]topoinv.Region{
//	        "P": topoinv.Rect(0, 0, 10, 10),
//	        "Q": topoinv.Rect(3, 3, 6, 6),
//	})
//	db, _ := topoinv.Open(inst)
//	inv, _ := db.Invariant()                      // top(I)
//	ok, _ := db.Ask(topoinv.Intersects("P", "Q"), // a topological query
//	        topoinv.ViaInvariantFixpoint)         // answered on top(I)
//
// The heavy lifting lives in the internal packages (exact geometry, the
// maximum topological cell decomposition, the relational/fixpoint engines,
// Ehrenfeucht–Fraïssé machinery and the Section-4 translations); this package
// re-exports the stable surface a downstream user needs.
package topoinv

import (
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geojson"
	"repro/internal/geom"
	"repro/internal/invariant"
	"repro/internal/pointfo"
	"repro/internal/queryl"
	"repro/internal/region"
	"repro/internal/simindex"
	"repro/internal/spatial"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/workload"
)

// Re-exported core types.
type (
	// Schema is a spatial database schema (a finite set of region names).
	Schema = spatial.Schema
	// Instance is a spatial database instance.
	Instance = spatial.Instance
	// Region is a compact semi-linear region of the plane.
	Region = region.Region
	// Invariant is the topological invariant top(I).
	Invariant = invariant.Invariant
	// Database wraps an instance with its invariant and query evaluators.
	Database = core.Database
	// Strategy selects how topological queries are evaluated.
	Strategy = core.Strategy
	// Query is a topological query in the point language FO(P,<x,<y).
	Query = pointfo.PointFormula
	// ParsedQuery is a parsed, canonicalized sentence of the textual query
	// language: the AST plus the canonical text that is the query's identity.
	ParsedQuery = queryl.Query
	// QueryError is a structured query-language error with the byte offset
	// of the offending token.
	QueryError = queryl.Error
	// Compression is the size/degree summary of a dataset.
	Compression = stats.Compression
	// Engine is the concurrent query engine with a content-addressed
	// invariant cache and a worker-pool batch evaluator.
	Engine = engine.Engine
	// EngineStats is a snapshot of the engine's cache and query counters.
	EngineStats = engine.Stats
	// BatchRequest is one query against one instance in a Batch call.
	BatchRequest = engine.Request
	// BatchResult is the outcome of one BatchRequest.
	BatchResult = engine.Result
	// EngineOption configures NewEngine.
	EngineOption = engine.Option
	// Store is the disk-backed, sharded, content-addressed invariant store.
	Store = store.Store
	// StoreStats summarises a Store's disk footprint.
	StoreStats = store.Stats
	// StoreOption configures OpenStore.
	StoreOption = store.Option
	// GeoJSONOption configures ImportGeoJSON.
	GeoJSONOption = geojson.Option
	// SimilarMatch is one ranked result of a similarity query
	// (Engine.Similar): an instance key, its comparative distance to the
	// probe, and whether it came from the exact (homeomorphism-class) tier.
	SimilarMatch = simindex.Match
	// SimilarEntry is an instance's similarity-index identity: equivalence
	// class, fingerprint hash and feature vector.
	SimilarEntry = simindex.Entry
	// SimIndexStats summarises the similarity index's size.
	SimIndexStats = simindex.Stats
)

// Evaluation strategies (the paper's options (i)–(iv)), plus Auto, which
// resolves per instance: ViaInvariantFixpoint when the invariant is in the
// class the fixpoint machinery can invert (free loops and isolated
// vertices), Direct otherwise — so every query is answered instead of
// erroring on instances with junction vertices or curve endpoints.
const (
	Direct               = core.Direct
	ViaInvariantFO       = core.ViaInvariantFO
	ViaInvariantFixpoint = core.ViaInvariantFixpoint
	ViaLinearized        = core.ViaLinearized
	Auto                 = core.Auto
)

// Binary-codec payload kinds (see PayloadKind).
const (
	KindInstance  = codec.KindInstance
	KindInvariant = codec.KindInvariant
)

// Schema and instance construction.
var (
	// NewSchema creates a schema from region names.
	NewSchema = spatial.NewSchema
	// MustSchema is NewSchema panicking on error.
	MustSchema = spatial.MustSchema
	// Build creates an instance from a name→region map.
	Build = spatial.Build
	// MustBuild is Build panicking on error.
	MustBuild = spatial.MustBuild
	// Open prepares a Database for an instance.
	Open = core.Open
	// ComputeInvariant computes top(I) directly.
	ComputeInvariant = invariant.Compute
	// Equivalent reports topological equivalence of two instances.
	Equivalent = core.TopologicallyEquivalent
	// Measure computes the compression summary of an instance.
	Measure = stats.Measure
	// OpenWith prepares a Database seeded with a precomputed invariant.
	OpenWith = core.OpenWith
)

// The textual query language (package queryl): parse arbitrary FO(P,<x,<y)
// sentences like
//
//	exists u . in(P, u) and interior(Q, u)
//	forall u . in(P, u) implies not interior(Q, u)
//
// into Query ASTs, and print any Query in the canonical concrete syntax.
// The canonical text is the query's identity: the engine's answer cache and
// the HTTP API key on it.
var (
	// ParseQuery parses and checks one sentence of the concrete syntax.
	// Errors are *QueryError values with byte offsets into the source.
	ParseQuery = queryl.Parse
	// FormatQuery returns the canonical concrete-syntax text of a query.
	FormatQuery = queryl.Format
	// QueryAlias expands a legacy query name (nonempty | hasinterior |
	// intersects | contained | boundaryonly) into concrete-syntax text.
	QueryAlias = queryl.Alias
	// QueryAliasNames lists the legacy query names.
	QueryAliasNames = queryl.AliasNames
	// QueryAliasArity returns a legacy name's region-argument count (-1 if
	// unknown).
	QueryAliasArity = queryl.AliasArity
	// EqualQueries reports structural equality of two query ASTs.
	EqualQueries = pointfo.Equal
	// QueryDepth returns the quantifier depth of a query (evaluation cost is
	// exponential in it — front ends should bound it on open endpoints).
	QueryDepth = pointfo.QuantifierDepth
	// WithAnswerCapacity bounds the engine's Boolean answer cache.
	WithAnswerCapacity = engine.WithAnswerCapacity
)

// Persistence: the deterministic, versioned binary codec for instances and
// invariants, and the concurrent query engine built on it.
var (
	// Encode serializes an instance to the versioned binary format.
	Encode = codec.EncodeInstance
	// Decode deserializes an instance.
	Decode = codec.DecodeInstance
	// EncodeInvariant serializes a topological invariant.
	EncodeInvariant = codec.EncodeInvariant
	// DecodeInvariant deserializes (and validates) a topological invariant.
	DecodeInvariant = codec.DecodeInvariant
	// PayloadKind inspects a blob's header: KindInstance or KindInvariant.
	PayloadKind = codec.PayloadKind
	// NewEngine creates a concurrent query engine.
	NewEngine = engine.New
	// WithCacheCapacity bounds the engine's invariant cache (LRU).
	WithCacheCapacity = engine.WithCacheCapacity
	// WithEvaluatorCapacity bounds the engine's compiled-evaluator cache
	// ({sample, membership matrix, ranks} per instance content).
	WithEvaluatorCapacity = engine.WithEvaluatorCapacity
	// WithWorkers sets the engine's Batch worker-pool size.
	WithWorkers = engine.WithWorkers
	// WithStore layers the engine over a disk-persistent invariant store:
	// cache misses fall through to disk before recomputing, and computed
	// invariants are persisted for the next process.
	WithStore = engine.WithStore
	// InstanceKey returns the content address (hex SHA-256 of the encoding)
	// of an instance.
	InstanceKey = engine.InstanceKey
	// OpenStore opens (creating if needed) a standalone invariant store
	// directory, independent of any engine.
	OpenStore = store.Open
	// StorePrefixLen sets a new store directory's shard fan-out.
	StorePrefixLen = store.WithPrefixLen
	// StoreFsync makes every store write fsync before returning.
	StoreFsync = store.WithFsync
)

// GeoJSON import: user-supplied Polygon/MultiPolygon/LineString/Point
// FeatureCollections become spatial instances with exact rational
// coordinates.
var (
	// ImportGeoJSON parses a GeoJSON document into an Instance, snapping
	// float coordinates onto a rational grid and validating the topology.
	ImportGeoJSON = geojson.Import
	// GeoJSONPrecision sets the decimal snapping grid.
	GeoJSONPrecision = geojson.WithPrecision
	// GeoJSONNameProperty sets the feature property used as region name.
	GeoJSONNameProperty = geojson.WithNameProperty
	// GeoJSONDefaultName sets the region name for unnamed features.
	GeoJSONDefaultName = geojson.WithDefaultName
)

// GeoJSON import defaults.
const (
	GeoJSONDefaultPrecision    = geojson.DefaultPrecision
	GeoJSONDefaultNameProperty = geojson.DefaultNameProperty
	GeoJSONDefaultRegionName   = geojson.DefaultRegionName
)

// Region constructors.
var (
	// Rect is a filled axis-aligned rectangle.
	Rect = region.Rect
	// Annulus is a filled rectangle with a rectangular hole.
	Annulus = region.Annulus
	// FromPolygon wraps a simple polygon as a region.
	FromPolygon = region.FromPolygon
	// FromPolyline wraps a polyline as a 1-dimensional region.
	FromPolyline = region.FromPolyline
	// FromPoint wraps a point as a 0-dimensional region.
	FromPoint = region.FromPoint
	// Pt builds a point with integer coordinates.
	Pt = geom.Pt
	// MustPolygon builds a polygon from points.
	MustPolygon = geom.MustPolygon
	// MustPolyline builds a polyline from points.
	MustPolyline = geom.MustPolyline
)

// Workload generators (synthetic cartographic data shaped like the datasets
// measured in the paper).
var (
	LandUse            = workload.LandUse
	DefaultLandUse     = workload.DefaultLandUse
	Hydrography        = workload.Hydrography
	DefaultHydrography = workload.DefaultHydrography
	Commune            = workload.Commune
	DefaultCommune     = workload.DefaultCommune
	NestedRegions      = workload.NestedRegions
	MultiComponent     = workload.MultiComponent
)

// Intersects is the topological query "regions p and q share a point".
func Intersects(p, q string) Query { return pointfo.QueryIntersect(p, q) }

// Contained is the topological query "region p is contained in region q".
func Contained(p, q string) Query { return pointfo.QueryContained(p, q) }

// BoundaryOnlyIntersection is the paper's running example: "p and q intersect
// only on their boundaries".
func BoundaryOnlyIntersection(p, q string) Query {
	return pointfo.QueryBoundaryOnlyIntersection(p, q)
}

// NonEmpty is the query "region p has at least one point".
func NonEmpty(p string) Query {
	return pointfo.PExists{Vars: []string{"u"}, Body: pointfo.In{Region: p, Var: "u"}}
}

// HasInterior is the query "region p has a two-dimensional part".
func HasInterior(p string) Query {
	return pointfo.PExists{Vars: []string{"u"}, Body: pointfo.InInterior{Region: p, Var: "u"}}
}
