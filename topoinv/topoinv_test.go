package topoinv_test

import (
	"testing"

	"repro/topoinv"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	schema := topoinv.MustSchema("P", "Q")
	inst := topoinv.MustBuild(schema, map[string]topoinv.Region{
		"P": topoinv.Rect(0, 0, 10, 10),
		"Q": topoinv.Rect(3, 3, 6, 6),
	})
	db, err := topoinv.Open(inst)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := db.Invariant()
	if err != nil {
		t.Fatal(err)
	}
	if inv.CellCount() == 0 {
		t.Error("invariant empty")
	}
	for _, s := range []topoinv.Strategy{topoinv.Direct, topoinv.ViaInvariantFixpoint, topoinv.ViaLinearized} {
		ok, err := db.Ask(topoinv.Intersects("P", "Q"), s)
		if err != nil {
			t.Errorf("strategy %v: %v", s, err)
			continue
		}
		if !ok {
			t.Errorf("strategy %v: nested rectangles should intersect", s)
		}
	}
	if ok, _ := db.Ask(topoinv.Contained("Q", "P"), topoinv.Direct); !ok {
		t.Error("Q should be contained in P")
	}
	if ok, _ := db.Ask(topoinv.BoundaryOnlyIntersection("P", "Q"), topoinv.Direct); ok {
		t.Error("interiors overlap, so boundary-only intersection should fail")
	}
	eq, err := topoinv.Equivalent(inst, inst)
	if err != nil || !eq {
		t.Error("instance should be equivalent to itself")
	}
}

func TestPublicWorkloadsAndMeasure(t *testing.T) {
	inst, err := topoinv.LandUse(topoinv.DefaultLandUse(1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := topoinv.Measure("landuse", inst, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ratio <= 1 {
		t.Errorf("expected compression, got ratio %.2f", c.Ratio)
	}
	single, err := topoinv.NestedRegions(2)
	if err != nil {
		t.Fatal(err)
	}
	db, err := topoinv.Open(single)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := db.Ask(topoinv.HasInterior("P"), topoinv.ViaInvariantFO)
	if err != nil || !ok {
		t.Errorf("FO-on-invariant strategy failed: %v %v", ok, err)
	}
	if ok, _ := db.Ask(topoinv.NonEmpty("P"), topoinv.Direct); !ok {
		t.Error("NonEmpty should hold")
	}
}

// TestPublicPersistenceSurface drives the PR-2 public surface end to end:
// GeoJSON import, a standalone store, and an engine persisting to disk
// across a restart.
func TestPublicPersistenceSurface(t *testing.T) {
	doc := []byte(`{"type":"FeatureCollection","features":[
	  {"type":"Feature","properties":{"name":"P"},"geometry":
	    {"type":"Polygon","coordinates":[[[0,0],[10,0],[10,10],[0,10],[0,0]]]}},
	  {"type":"Feature","properties":{"name":"Q"},"geometry":
	    {"type":"Polygon","coordinates":[[[3,3],[6,3],[6,6],[3,6],[3,3]]]}}]}`)
	inst, err := topoinv.ImportGeoJSON(doc, topoinv.GeoJSONPrecision(6))
	if err != nil {
		t.Fatal(err)
	}
	key, err := topoinv.InstanceKey(inst)
	if err != nil {
		t.Fatal(err)
	}

	// Standalone store round trip.
	dir := t.TempDir()
	st, err := topoinv.OpenStore(dir, topoinv.StorePrefixLen(1))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := topoinv.Encode(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Engine persistence across a restart.
	engDir := t.TempDir()
	eng := topoinv.NewEngine(topoinv.WithStore(engDir))
	if err := eng.StoreErr(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Invariant(inst); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2 := topoinv.NewEngine(topoinv.WithStore(engDir))
	defer eng2.Close()
	ok, err := eng2.Ask(inst, topoinv.Intersects("P", "Q"), topoinv.ViaInvariantFixpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Q inside P: Intersects = false")
	}
	stats := eng2.Stats()
	if stats.StoreHits != 1 || stats.Computes != 0 {
		t.Errorf("restarted engine: store_hits=%d computes=%d, want 1/0", stats.StoreHits, stats.Computes)
	}
}

// TestPublicQueryLanguage drives the textual query-language surface: parse,
// canonical formatting, schema resolution, AskText, and the engine's answer
// cache on a user-written sentence.
func TestPublicQueryLanguage(t *testing.T) {
	schema := topoinv.MustSchema("P", "Q")
	inst := topoinv.MustBuild(schema, map[string]topoinv.Region{
		"P": topoinv.Rect(0, 0, 10, 10),
		"Q": topoinv.Rect(3, 3, 6, 6),
	})

	q, err := topoinv.ParseQuery("forall u . in(Q, u) implies in(P, u)")
	if err != nil {
		t.Fatal(err)
	}
	if !topoinv.EqualQueries(q.Formula, topoinv.Contained("Q", "P")) {
		t.Error("parsed containment differs from the Contained constructor")
	}
	if q.Canonical != topoinv.FormatQuery(topoinv.Contained("Q", "P")) {
		t.Errorf("canonical %q differs from FormatQuery of the constructor", q.Canonical)
	}
	if err := q.CheckSchema(inst.Schema()); err != nil {
		t.Fatal(err)
	}

	db, err := topoinv.Open(inst)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := db.AskText("forall u . in(Q, u) implies in(P, u)", topoinv.Direct)
	if err != nil || !ok {
		t.Errorf("AskText containment = %v, %v; want true", ok, err)
	}
	// A parse error surfaces as a structured *QueryError.
	if _, err := db.AskText("forall u . in(Z, u) implies in(P, u)", topoinv.Direct); err == nil {
		t.Error("unknown region accepted")
	}

	// The engine serves a repeated parsed ask from the answer cache.
	eng := topoinv.NewEngine()
	if res := eng.AskResult(inst, q.Formula, topoinv.Auto); res.Err != nil {
		t.Fatal(res.Err)
	}
	res := eng.AskResult(inst, q.Formula, topoinv.Auto)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.AnswerHit {
		t.Error("repeated ask missed the answer cache")
	}
	if res.Canonical != q.Canonical {
		t.Errorf("engine canonical %q, parser canonical %q", res.Canonical, q.Canonical)
	}
	if st := eng.Stats(); st.AnswerHits != 1 {
		t.Errorf("answer_hits = %d, want 1", st.AnswerHits)
	}

	// Legacy aliases expand to the same canonical identities the query
	// constructors produce.
	for _, name := range topoinv.QueryAliasNames {
		regions := []string{"P", "Q"}[:topoinv.QueryAliasArity(name)]
		src, err := topoinv.QueryAlias(name, regions...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := topoinv.ParseQuery(src); err != nil {
			t.Errorf("alias %s text %q does not parse: %v", name, src, err)
		}
	}
}
