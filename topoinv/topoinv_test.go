package topoinv_test

import (
	"testing"

	"repro/topoinv"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	schema := topoinv.MustSchema("P", "Q")
	inst := topoinv.MustBuild(schema, map[string]topoinv.Region{
		"P": topoinv.Rect(0, 0, 10, 10),
		"Q": topoinv.Rect(3, 3, 6, 6),
	})
	db, err := topoinv.Open(inst)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := db.Invariant()
	if err != nil {
		t.Fatal(err)
	}
	if inv.CellCount() == 0 {
		t.Error("invariant empty")
	}
	for _, s := range []topoinv.Strategy{topoinv.Direct, topoinv.ViaInvariantFixpoint, topoinv.ViaLinearized} {
		ok, err := db.Ask(topoinv.Intersects("P", "Q"), s)
		if err != nil {
			t.Errorf("strategy %v: %v", s, err)
			continue
		}
		if !ok {
			t.Errorf("strategy %v: nested rectangles should intersect", s)
		}
	}
	if ok, _ := db.Ask(topoinv.Contained("Q", "P"), topoinv.Direct); !ok {
		t.Error("Q should be contained in P")
	}
	if ok, _ := db.Ask(topoinv.BoundaryOnlyIntersection("P", "Q"), topoinv.Direct); ok {
		t.Error("interiors overlap, so boundary-only intersection should fail")
	}
	eq, err := topoinv.Equivalent(inst, inst)
	if err != nil || !eq {
		t.Error("instance should be equivalent to itself")
	}
}

func TestPublicWorkloadsAndMeasure(t *testing.T) {
	inst, err := topoinv.LandUse(topoinv.DefaultLandUse(1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := topoinv.Measure("landuse", inst, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ratio <= 1 {
		t.Errorf("expected compression, got ratio %.2f", c.Ratio)
	}
	single, err := topoinv.NestedRegions(2)
	if err != nil {
		t.Fatal(err)
	}
	db, err := topoinv.Open(single)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := db.Ask(topoinv.HasInterior("P"), topoinv.ViaInvariantFO)
	if err != nil || !ok {
		t.Errorf("FO-on-invariant strategy failed: %v %v", ok, err)
	}
	if ok, _ := db.Ask(topoinv.NonEmpty("P"), topoinv.Direct); !ok {
		t.Error("NonEmpty should hold")
	}
}
